#include "netlist/gate_type.hpp"

#include <cassert>

#include "util/strings.hpp"

namespace satdiag {

std::string_view gate_type_name(GateType type) {
  switch (type) {
    case GateType::kInput:
      return "INPUT";
    case GateType::kDff:
      return "DFF";
    case GateType::kConst0:
      return "CONST0";
    case GateType::kConst1:
      return "CONST1";
    case GateType::kBuf:
      return "BUF";
    case GateType::kNot:
      return "NOT";
    case GateType::kAnd:
      return "AND";
    case GateType::kNand:
      return "NAND";
    case GateType::kOr:
      return "OR";
    case GateType::kNor:
      return "NOR";
    case GateType::kXor:
      return "XOR";
    case GateType::kXnor:
      return "XNOR";
  }
  return "?";
}

std::optional<GateType> gate_type_from_name(std::string_view name) {
  const std::string upper = to_upper(name);
  // BUFF is the spelling used by several ISCAS89 distributions.
  if (upper == "BUFF") return GateType::kBuf;
  for (GateType type : {GateType::kInput, GateType::kDff, GateType::kConst0,
                        GateType::kConst1, GateType::kBuf, GateType::kNot,
                        GateType::kAnd, GateType::kNand, GateType::kOr,
                        GateType::kNor, GateType::kXor, GateType::kXnor}) {
    if (upper == gate_type_name(type)) return type;
  }
  return std::nullopt;
}

std::optional<bool> controlling_value(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
      return false;
    case GateType::kOr:
    case GateType::kNor:
      return true;
    default:
      return std::nullopt;
  }
}

bool arity_ok(GateType type, std::size_t arity) {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return arity == 0;
    case GateType::kDff:
    case GateType::kBuf:
    case GateType::kNot:
      return arity == 1;
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return arity >= 1;
  }
  return false;
}

bool eval_gate(GateType type, const std::vector<bool>& fanins) {
  std::uint64_t words[16];
  assert(fanins.size() <= 16);
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    words[i] = fanins[i] ? ~0ULL : 0ULL;
  }
  return (eval_gate_words(type, words, fanins.size()) & 1ULL) != 0;
}

std::uint64_t eval_gate_words(GateType type, const std::uint64_t* fanins,
                              std::size_t arity) {
  switch (type) {
    case GateType::kConst0:
      return 0ULL;
    case GateType::kConst1:
      return ~0ULL;
    case GateType::kInput:
    case GateType::kDff:
      assert(false && "source gates have no combinational function");
      return 0ULL;
    case GateType::kBuf:
      assert(arity == 1);
      return fanins[0];
    case GateType::kNot:
      assert(arity == 1);
      return ~fanins[0];
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint64_t acc = ~0ULL;
      for (std::size_t i = 0; i < arity; ++i) acc &= fanins[i];
      return type == GateType::kAnd ? acc : ~acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint64_t acc = 0ULL;
      for (std::size_t i = 0; i < arity; ++i) acc |= fanins[i];
      return type == GateType::kOr ? acc : ~acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::uint64_t acc = 0ULL;
      for (std::size_t i = 0; i < arity; ++i) acc ^= fanins[i];
      return type == GateType::kXor ? acc : ~acc;
    }
  }
  return 0ULL;
}

std::vector<GateType> substitutable_types(std::size_t arity) {
  std::vector<GateType> out;
  for (GateType type : {GateType::kBuf, GateType::kNot, GateType::kAnd,
                        GateType::kNand, GateType::kOr, GateType::kNor,
                        GateType::kXor, GateType::kXnor}) {
    if (arity_ok(type, arity)) out.push_back(type);
  }
  return out;
}

}  // namespace satdiag
