// Netlist cleanup transforms: constant folding and structural hashing.
//
// Synthesis optimizations are exactly why the structural diagnosis
// approaches the paper dismisses ([12]) break down — "such similarities may
// not be present, e.g. due to optimizations during synthesis". These
// transforms let tests and experiments produce optimized implementations
// whose structure diverges from the specification while remaining
// functionally equal, and they are useful preprocessing before CNF
// encoding (fewer gates -> smaller diagnosis instances).
//
// Both transforms preserve the observable functions: every original output
// maps to an equivalent signal in the transformed netlist.
#pragma once

#include "netlist/netlist.hpp"

namespace satdiag {

struct TransformResult {
  Netlist netlist;
  /// old gate id -> new gate id carrying the same function, or kNoGate when
  /// the gate was removed as unreachable/dead.
  std::vector<GateId> gate_map;
};

/// Propagate constants (CONST0/CONST1 fanins simplify their fanouts),
/// collapse BUF chains and single-input AND/OR, and drop gates that become
/// unobservable. DFFs and primary inputs are always kept.
TransformResult constant_fold(const Netlist& nl);

/// Structural hashing: merge gates with identical (type, canonical fanin
/// list). Fanins of commutative gates are sorted, so AND(a,b) and AND(b,a)
/// merge. Runs bottom-up, so merged fanins enable further merges.
TransformResult strash(const Netlist& nl);

}  // namespace satdiag
