// Gate-level netlist IR.
//
// Gates are dense uint32_t ids; all derived structure (topological order,
// levels, fanouts in CSR form) is computed once by finalize() and stays valid
// under the only post-finalize mutation the library performs: gate-type
// substitution at unchanged arity (the error-injection model).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate_type.hpp"

namespace satdiag {

using GateId = std::uint32_t;
inline constexpr GateId kNoGate = 0xffffffffu;

/// Thrown on structural construction errors (bad arity, cycles, ...).
class NetlistError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // ---- construction -------------------------------------------------------
  GateId add_input(std::string name);
  GateId add_const(bool value, std::string name);
  GateId add_gate(GateType type, std::string name, std::vector<GateId> fanins);
  /// DFFs are created without a data input so .bench forward references work;
  /// set_dff_input must be called before finalize().
  GateId add_dff(std::string name);
  void set_dff_input(GateId dff, GateId data);
  void add_output(GateId gate);

  /// Validates arities and acyclicity, computes topo order / levels / CSR
  /// fanouts. Throws NetlistError on invalid structure.
  void finalize();
  bool finalized() const { return finalized_; }

  // ---- post-finalize mutation (error injection) ---------------------------
  /// Replace the gate function, keeping fanins. Topology is unchanged, so all
  /// derived data stays valid. Throws on arity mismatch or source gates.
  void substitute_type(GateId gate, GateType new_type);

  // ---- queries -------------------------------------------------------------
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::size_t size() const { return types_.size(); }
  GateType type(GateId g) const { return types_[g]; }
  const std::string& gate_name(GateId g) const { return names_[g]; }
  std::span<const GateId> fanins(GateId g) const { return fanins_[g]; }

  bool is_source(GateId g) const { return is_source_type(types_[g]); }
  bool is_combinational(GateId g) const { return !is_source(g); }

  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& dffs() const { return dffs_; }
  const std::vector<GateId>& outputs() const { return outputs_; }

  /// All combinational sources: inputs, DFF outputs, constants.
  std::size_t num_sources() const { return num_sources_; }
  std::size_t num_combinational_gates() const { return size() - num_sources_; }

  /// Lookup by name; kNoGate when absent.
  GateId find(std::string_view name) const;

  // ---- derived structure (valid after finalize) ----------------------------
  /// Combinational topological order over all gates (sources first).
  const std::vector<GateId>& topo_order() const { return topo_; }
  /// Levelization: sources at level 0, gate level = 1 + max(fanin levels).
  const std::vector<std::uint32_t>& levels() const { return levels_; }
  std::uint32_t depth() const { return depth_; }
  /// Inline: the dirty-cone schedulers walk fanouts per changed gate.
  std::span<const GateId> fanouts(GateId g) const {
    return {fanout_data_.data() + fanout_offset_[g],
            fanout_data_.data() + fanout_offset_[g + 1]};
  }

  /// Deep copy (cheap enough at ISCAS89 scale; used for golden/faulty pairs).
  Netlist clone() const { return *this; }

 private:
  GateId new_gate(GateType type, std::string name, std::vector<GateId> fanins);
  void check_not_finalized(const char* op) const;

  std::string name_;
  std::vector<GateType> types_;
  std::vector<std::string> names_;
  std::vector<std::vector<GateId>> fanins_;
  std::vector<GateId> inputs_;
  std::vector<GateId> dffs_;
  std::vector<GateId> outputs_;
  std::unordered_map<std::string, GateId> by_name_;
  std::size_t num_sources_ = 0;

  bool finalized_ = false;
  std::vector<GateId> topo_;
  std::vector<std::uint32_t> levels_;
  std::uint32_t depth_ = 0;
  // CSR fanout adjacency.
  std::vector<std::uint32_t> fanout_offset_;
  std::vector<GateId> fanout_data_;
};

}  // namespace satdiag
