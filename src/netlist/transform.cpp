#include "netlist/transform.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "netlist/analysis.hpp"

namespace satdiag {
namespace {

/// Lazily-created shared constant nodes in the output netlist.
class ConstPool {
 public:
  explicit ConstPool(Netlist& nl) : nl_(&nl) {}
  GateId get(bool value) {
    GateId& slot = value ? one_ : zero_;
    if (slot == kNoGate) slot = nl_->add_const(value, "");
    return slot;
  }

 private:
  Netlist* nl_;
  GateId zero_ = kNoGate;
  GateId one_ = kNoGate;
};

bool is_const(const Netlist& nl, GateId g, bool value) {
  return nl.type(g) == (value ? GateType::kConst1 : GateType::kConst0);
}

bool is_any_const(const Netlist& nl, GateId g) {
  return nl.type(g) == GateType::kConst0 || nl.type(g) == GateType::kConst1;
}

}  // namespace

TransformResult constant_fold(const Netlist& nl) {
  assert(nl.finalized());
  TransformResult result;
  Netlist& out = result.netlist;
  out.set_name(nl.name() + "_fold");
  result.gate_map.assign(nl.size(), kNoGate);
  ConstPool consts(out);

  // Keep only gates that can reach an observation point (dead logic is
  // dropped); sources are always kept.
  std::vector<GateId> roots = observation_points(nl);
  for (GateId po : nl.outputs()) roots.push_back(po);
  const std::vector<bool> live = fanin_cone(nl, roots);

  // `negate` returns a node computing the complement of `node`.
  auto negate = [&](GateId node) -> GateId {
    if (is_any_const(out, node)) {
      return consts.get(out.type(node) == GateType::kConst0);
    }
    if (out.type(node) == GateType::kNot) return out.fanins(node)[0];
    return out.add_gate(GateType::kNot, "", {node});
  };

  for (GateId g : nl.topo_order()) {
    if (!live[g] && nl.is_combinational(g)) continue;
    switch (nl.type(g)) {
      case GateType::kInput:
        result.gate_map[g] = out.add_input(nl.gate_name(g));
        continue;
      case GateType::kDff:
        result.gate_map[g] = out.add_dff(nl.gate_name(g));
        continue;
      case GateType::kConst0:
      case GateType::kConst1:
        result.gate_map[g] = consts.get(nl.type(g) == GateType::kConst1);
        continue;
      default:
        break;
    }

    std::vector<GateId> ins;
    ins.reserve(nl.fanins(g).size());
    for (GateId f : nl.fanins(g)) {
      assert(result.gate_map[f] != kNoGate);
      ins.push_back(result.gate_map[f]);
    }
    const GateType type = nl.type(g);
    GateId mapped = kNoGate;
    switch (type) {
      case GateType::kBuf:
        mapped = ins[0];
        break;
      case GateType::kNot:
        mapped = negate(ins[0]);
        break;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool controlling =
            (type == GateType::kOr || type == GateType::kNor);
        const bool invert =
            (type == GateType::kNand || type == GateType::kNor);
        bool forced = false;
        std::vector<GateId> kept;
        for (GateId in : ins) {
          if (is_const(out, in, controlling)) {
            forced = true;  // controlling constant decides the output
          } else if (!is_any_const(out, in)) {
            kept.push_back(in);
          }
          // Non-controlling constants are simply dropped.
        }
        if (forced) {
          mapped = consts.get(controlling != invert);
        } else if (kept.empty()) {
          // All inputs were non-controlling constants: identity element.
          mapped = consts.get(!controlling != invert);
        } else if (kept.size() == 1) {
          mapped = invert ? negate(kept[0]) : kept[0];
        } else {
          const GateType base = controlling
                                    ? (invert ? GateType::kNor : GateType::kOr)
                                    : (invert ? GateType::kNand
                                              : GateType::kAnd);
          mapped = out.add_gate(base, nl.gate_name(g), std::move(kept));
        }
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        bool parity_flip = (type == GateType::kXnor);
        std::vector<GateId> kept;
        for (GateId in : ins) {
          if (is_const(out, in, true)) {
            parity_flip = !parity_flip;
          } else if (!is_const(out, in, false)) {
            kept.push_back(in);
          }
        }
        if (kept.empty()) {
          mapped = consts.get(parity_flip);
        } else if (kept.size() == 1) {
          mapped = parity_flip ? negate(kept[0]) : kept[0];
        } else {
          mapped = out.add_gate(parity_flip ? GateType::kXnor : GateType::kXor,
                                nl.gate_name(g), std::move(kept));
        }
        break;
      }
      default:
        assert(false);
    }
    result.gate_map[g] = mapped;
  }

  for (GateId d : nl.dffs()) {
    out.set_dff_input(result.gate_map[d], result.gate_map[nl.fanins(d)[0]]);
  }
  for (GateId po : nl.outputs()) {
    out.add_output(result.gate_map[po]);
  }
  out.finalize();
  return result;
}

TransformResult strash(const Netlist& nl) {
  assert(nl.finalized());
  TransformResult result;
  Netlist& out = result.netlist;
  out.set_name(nl.name() + "_strash");
  result.gate_map.assign(nl.size(), kNoGate);

  std::map<std::pair<GateType, std::vector<GateId>>, GateId> seen;
  for (GateId g : nl.topo_order()) {
    switch (nl.type(g)) {
      case GateType::kInput:
        result.gate_map[g] = out.add_input(nl.gate_name(g));
        continue;
      case GateType::kDff:
        result.gate_map[g] = out.add_dff(nl.gate_name(g));
        continue;
      case GateType::kConst0:
      case GateType::kConst1: {
        auto key = std::make_pair(nl.type(g), std::vector<GateId>{});
        auto it = seen.find(key);
        if (it == seen.end()) {
          const GateId c =
              out.add_const(nl.type(g) == GateType::kConst1, nl.gate_name(g));
          it = seen.emplace(std::move(key), c).first;
        }
        result.gate_map[g] = it->second;
        continue;
      }
      default:
        break;
    }
    std::vector<GateId> ins;
    for (GateId f : nl.fanins(g)) ins.push_back(result.gate_map[f]);
    // All our multi-input gate functions are commutative: canonicalize.
    std::sort(ins.begin(), ins.end());
    auto key = std::make_pair(nl.type(g), std::move(ins));
    auto it = seen.find(key);
    if (it == seen.end()) {
      const GateId fresh =
          out.add_gate(nl.type(g), nl.gate_name(g), key.second);
      it = seen.emplace(std::move(key), fresh).first;
    }
    result.gate_map[g] = it->second;
  }

  for (GateId d : nl.dffs()) {
    out.set_dff_input(result.gate_map[d], result.gate_map[nl.fanins(d)[0]]);
  }
  for (GateId po : nl.outputs()) {
    out.add_output(result.gate_map[po]);
  }
  out.finalize();
  return result;
}

}  // namespace satdiag
