// Full-scan conversion of sequential circuits.
//
// The paper evaluates on sequential ISCAS89 circuits but all three basic
// procedures operate per test on a combinational frame. The standard
// full-scan model makes that explicit: every DFF output becomes a
// pseudo-primary input and every DFF data input a pseudo-primary output.
// Gate ids are preserved so errors injected in the sequential netlist map
// 1:1 onto the combinational view.
#pragma once

#include "netlist/netlist.hpp"

namespace satdiag {

struct ScanModel {
  Netlist comb;  // combinational full-scan view; gate ids match the original

  std::size_t num_real_inputs = 0;   // leading entries of comb.inputs()
  std::size_t num_real_outputs = 0;  // leading entries of comb.outputs()

  /// comb.outputs()[num_real_outputs + i] observes the data input of
  /// original DFF scan_dffs[i].
  std::vector<GateId> scan_dffs;
};

/// Build the full-scan combinational view. The input netlist must be
/// finalized; the result is finalized too.
ScanModel make_full_scan(const Netlist& sequential);

}  // namespace satdiag
