#include "netlist/scan.hpp"

#include <cassert>

namespace satdiag {

ScanModel make_full_scan(const Netlist& sequential) {
  assert(sequential.finalized());
  ScanModel model;
  Netlist& comb = model.comb;
  comb.set_name(sequential.name() + "_scan");

  // Rebuild gate-by-gate in id order so ids are preserved. The original
  // netlist is constructible in id order by definition except for DFF data
  // inputs (forward references), which do not exist in the scan view.
  for (GateId g = 0; g < sequential.size(); ++g) {
    const GateType type = sequential.type(g);
    const std::string& name = sequential.gate_name(g);
    GateId new_id = kNoGate;
    switch (type) {
      case GateType::kInput:
        new_id = comb.add_input(name);
        break;
      case GateType::kDff:
        new_id = comb.add_input(name);  // pseudo-primary input
        break;
      case GateType::kConst0:
        new_id = comb.add_const(false, name);
        break;
      case GateType::kConst1:
        new_id = comb.add_const(true, name);
        break;
      default: {
        std::vector<GateId> fanins(sequential.fanins(g).begin(),
                                   sequential.fanins(g).end());
        new_id = comb.add_gate(type, name, std::move(fanins));
        break;
      }
    }
    assert(new_id == g);
    (void)new_id;
  }

  for (GateId out : sequential.outputs()) comb.add_output(out);
  model.num_real_inputs = sequential.inputs().size();
  model.num_real_outputs = sequential.outputs().size();
  for (GateId dff : sequential.dffs()) {
    comb.add_output(sequential.fanins(dff)[0]);  // pseudo-primary output
    model.scan_dffs.push_back(dff);
  }
  comb.finalize();
  return model;
}

}  // namespace satdiag
