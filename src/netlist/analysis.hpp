// Structural analyses on finalized netlists: cones, dominators, distances.
//
// These back three parts of the reproduction:
//  * fanin/fanout cones — path tracing sanity checks and test pruning,
//  * single-gate dominators — the advanced SAT-based diagnosis heuristic
//    (Smith et al.) instruments only dominator gates in the first pass,
//  * undirected shortest-path distance — the quality metric of Table 3
//    ("number of gates on a shortest path to any error").
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace satdiag {

/// Transitive fanin of `roots` (including the roots), as a dense flag vector.
std::vector<bool> fanin_cone(const Netlist& nl, const std::vector<GateId>& roots);

/// Transitive combinational fanout of `roots` (including the roots).
std::vector<bool> fanout_cone(const Netlist& nl, const std::vector<GateId>& roots);

/// Immediate dominators toward the observation points.
///
/// Gate d dominates gate g when every combinational path from g to any
/// observed point (primary output or DFF data input) passes through d. The
/// result maps each gate to its immediate dominator, or kNoGate for gates
/// whose only dominator is the virtual sink (e.g. gates feeding two outputs
/// on disjoint paths) and for unobservable gates.
std::vector<GateId> immediate_dominators(const Netlist& nl);

/// The chain of dominators of g (excluding g itself), nearest first.
std::vector<GateId> dominator_chain(const Netlist& nl,
                                    const std::vector<GateId>& idom, GateId g);

/// BFS distance from the nearest gate in `sources`, ignoring edge direction
/// (fanin and fanout edges both count, as in the paper's distance metric).
/// Unreachable gates get UINT32_MAX.
std::vector<std::uint32_t> undirected_distances(const Netlist& nl,
                                                const std::vector<GateId>& sources);

/// Observation points: primary outputs plus DFF data inputs (full-scan view).
std::vector<GateId> observation_points(const Netlist& nl);

}  // namespace satdiag
