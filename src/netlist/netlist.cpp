#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace satdiag {

void Netlist::check_not_finalized(const char* op) const {
  if (finalized_) {
    throw NetlistError(strprintf("%s after finalize()", op));
  }
}

GateId Netlist::new_gate(GateType type, std::string name,
                         std::vector<GateId> fanins) {
  check_not_finalized("gate construction");
  if (!arity_ok(type, fanins.size()) && type != GateType::kDff) {
    throw NetlistError(strprintf("gate '%s': %zu fanins illegal for %s",
                                 name.c_str(), fanins.size(),
                                 std::string(gate_type_name(type)).c_str()));
  }
  for (GateId f : fanins) {
    if (f >= types_.size()) {
      throw NetlistError(strprintf("gate '%s': fanin id %u out of range",
                                   name.c_str(), f));
    }
  }
  const GateId id = static_cast<GateId>(types_.size());
  if (!name.empty()) {
    auto [it, inserted] = by_name_.emplace(name, id);
    (void)it;
    if (!inserted) {
      throw NetlistError(strprintf("duplicate gate name '%s'", name.c_str()));
    }
  }
  types_.push_back(type);
  names_.push_back(std::move(name));
  fanins_.push_back(std::move(fanins));
  if (is_source_type(type)) ++num_sources_;
  return id;
}

GateId Netlist::add_input(std::string name) {
  const GateId id = new_gate(GateType::kInput, std::move(name), {});
  inputs_.push_back(id);
  return id;
}

GateId Netlist::add_const(bool value, std::string name) {
  return new_gate(value ? GateType::kConst1 : GateType::kConst0,
                  std::move(name), {});
}

GateId Netlist::add_gate(GateType type, std::string name,
                         std::vector<GateId> fanins) {
  if (is_source_type(type)) {
    throw NetlistError("add_gate expects a combinational type");
  }
  return new_gate(type, std::move(name), std::move(fanins));
}

GateId Netlist::add_dff(std::string name) {
  const GateId id = new_gate(GateType::kDff, std::move(name), {});
  dffs_.push_back(id);
  return id;
}

void Netlist::set_dff_input(GateId dff, GateId data) {
  check_not_finalized("set_dff_input");
  if (dff >= size() || types_[dff] != GateType::kDff) {
    throw NetlistError("set_dff_input: not a DFF");
  }
  if (data >= size()) {
    throw NetlistError("set_dff_input: data id out of range");
  }
  fanins_[dff].assign(1, data);
}

void Netlist::add_output(GateId gate) {
  check_not_finalized("add_output");
  if (gate >= size()) throw NetlistError("add_output: id out of range");
  outputs_.push_back(gate);
}

void Netlist::substitute_type(GateId gate, GateType new_type) {
  if (gate >= size()) throw NetlistError("substitute_type: id out of range");
  if (is_source(gate) || is_source_type(new_type)) {
    throw NetlistError("substitute_type: only combinational gates");
  }
  if (!arity_ok(new_type, fanins_[gate].size())) {
    throw NetlistError(strprintf(
        "substitute_type: %s illegal at arity %zu",
        std::string(gate_type_name(new_type)).c_str(), fanins_[gate].size()));
  }
  types_[gate] = new_type;
}

GateId Netlist::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoGate : it->second;
}

void Netlist::finalize() {
  if (finalized_) return;
  for (GateId d : dffs_) {
    if (fanins_[d].empty()) {
      throw NetlistError(
          strprintf("DFF '%s' has no data input", names_[d].c_str()));
    }
  }
  const std::size_t n = size();

  // Kahn's algorithm on the combinational graph. DFF *outputs* are sources;
  // a DFF's data fanin is consumed at the end of the combinational frame and
  // therefore contributes no combinational edge.
  std::vector<std::uint32_t> pending(n, 0);
  for (GateId g = 0; g < n; ++g) {
    if (is_source(g)) continue;
    pending[g] = static_cast<std::uint32_t>(fanins_[g].size());
  }
  topo_.clear();
  topo_.reserve(n);
  levels_.assign(n, 0);
  // Combinational fanout edges, CSR. DFF data edges are included in the
  // adjacency (path tracing must walk through a pseudo-PO into a DFF's cone)
  // but not in the topological in-degree above.
  std::vector<std::uint32_t> counts(n, 0);
  for (GateId g = 0; g < n; ++g) {
    for (GateId f : fanins_[g]) ++counts[f];
  }
  fanout_offset_.assign(n + 1, 0);
  for (GateId g = 0; g < n; ++g) {
    fanout_offset_[g + 1] = fanout_offset_[g] + counts[g];
  }
  fanout_data_.assign(fanout_offset_[n], 0);
  {
    std::vector<std::uint32_t> cursor(fanout_offset_.begin(),
                                      fanout_offset_.end() - 1);
    for (GateId g = 0; g < n; ++g) {
      for (GateId f : fanins_[g]) fanout_data_[cursor[f]++] = g;
    }
  }

  std::vector<GateId> queue;
  for (GateId g = 0; g < n; ++g) {
    if (is_source(g)) queue.push_back(g);
  }
  std::size_t head = 0;
  while (head < queue.size()) {
    const GateId g = queue[head++];
    topo_.push_back(g);
    for (GateId out : fanouts(g)) {
      if (is_source(out)) continue;  // DFF data edge: next frame
      std::uint32_t level = 0;
      if (--pending[out] == 0) {
        for (GateId f : fanins_[out]) {
          level = std::max(level, levels_[f] + 1);
        }
        levels_[out] = level;
        queue.push_back(out);
      }
    }
  }
  if (topo_.size() != n) {
    throw NetlistError(strprintf(
        "combinational cycle: %zu of %zu gates unreachable in topo sort",
        n - topo_.size(), n));
  }
  depth_ = 0;
  for (std::uint32_t level : levels_) depth_ = std::max(depth_, level);
  finalized_ = true;
}

}  // namespace satdiag
