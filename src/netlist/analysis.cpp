#include "netlist/analysis.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace satdiag {

std::vector<bool> fanin_cone(const Netlist& nl,
                             const std::vector<GateId>& roots) {
  std::vector<bool> in_cone(nl.size(), false);
  std::vector<GateId> stack(roots);
  for (GateId r : roots) in_cone[r] = true;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (GateId f : nl.fanins(g)) {
      if (!in_cone[f]) {
        in_cone[f] = true;
        stack.push_back(f);
      }
    }
  }
  return in_cone;
}

std::vector<bool> fanout_cone(const Netlist& nl,
                              const std::vector<GateId>& roots) {
  std::vector<bool> in_cone(nl.size(), false);
  std::vector<GateId> stack(roots);
  for (GateId r : roots) in_cone[r] = true;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (GateId out : nl.fanouts(g)) {
      if (nl.is_source(out)) continue;  // stop at DFF frame boundary
      if (!in_cone[out]) {
        in_cone[out] = true;
        stack.push_back(out);
      }
    }
  }
  return in_cone;
}

std::vector<GateId> observation_points(const Netlist& nl) {
  std::vector<GateId> points(nl.outputs());
  for (GateId d : nl.dffs()) {
    points.push_back(nl.fanins(d)[0]);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

std::vector<GateId> immediate_dominators(const Netlist& nl) {
  assert(nl.finalized());
  const std::size_t n = nl.size();
  const GateId sink = static_cast<GateId>(n);  // virtual observation sink

  std::vector<bool> observed(n, false);
  for (GateId p : observation_points(nl)) observed[p] = true;

  // pidom[g] is g's immediate dominator toward the sink; the sink itself is a
  // real node here so the intersection walk never leaves the tree. depth[] is
  // the distance from the sink in the dominator tree (depth[sink] == 0).
  std::vector<GateId> pidom(n + 1, kNoGate);
  std::vector<std::uint32_t> depth(n + 1, 0);
  std::vector<bool> reaches(n, false);
  pidom[sink] = sink;

  // Cooper-Harvey-Kennedy intersection; both arguments are tree nodes.
  auto intersect = [&](GateId a, GateId b) {
    while (a != b) {
      while (depth[a] > depth[b]) a = pidom[a];
      while (depth[b] > depth[a]) b = pidom[b];
      if (a == b) break;
      // Equal depth, different nodes: step both.
      a = pidom[a];
      b = pidom[b];
    }
    return a;
  };

  // Reverse topological order: every combinational successor of g is final
  // before g is processed, so one pass suffices on a DAG.
  const auto& topo = nl.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId g = *it;
    GateId dom = kNoGate;
    bool any = false;
    auto merge = [&](GateId candidate) {
      any = true;
      dom = (dom == kNoGate) ? candidate : intersect(dom, candidate);
    };
    if (observed[g]) merge(sink);
    for (GateId out : nl.fanouts(g)) {
      if (nl.is_source(out)) continue;  // DFF data edge covered by observed[]
      if (!reaches[out]) continue;
      // Every path from g through this edge passes through `out` itself, so
      // the dominator candidate along the edge is the successor node.
      merge(out);
    }
    if (!any) continue;  // unobservable gate: no dominator defined
    reaches[g] = true;
    pidom[g] = dom;
    depth[g] = depth[dom] + 1;
  }

  std::vector<GateId> idom(pidom.begin(), pidom.begin() + n);
  for (GateId g = 0; g < n; ++g) {
    if (idom[g] == sink) idom[g] = kNoGate;
  }
  return idom;
}

std::vector<GateId> dominator_chain(const Netlist& nl,
                                    const std::vector<GateId>& idom,
                                    GateId g) {
  (void)nl;
  std::vector<GateId> chain;
  GateId cur = idom[g];
  while (cur != kNoGate) {
    chain.push_back(cur);
    cur = idom[cur];
  }
  return chain;
}

std::vector<std::uint32_t> undirected_distances(
    const Netlist& nl, const std::vector<GateId>& sources) {
  constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(nl.size(), kUnreached);
  std::vector<GateId> queue;
  for (GateId s : sources) {
    if (dist[s] == kUnreached) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  std::size_t head = 0;
  while (head < queue.size()) {
    const GateId g = queue[head++];
    auto visit = [&](GateId next) {
      if (dist[next] == kUnreached) {
        dist[next] = dist[g] + 1;
        queue.push_back(next);
      }
    };
    for (GateId f : nl.fanins(g)) visit(f);
    for (GateId out : nl.fanouts(g)) visit(out);
  }
  return dist;
}

}  // namespace satdiag
