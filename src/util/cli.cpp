#include "util/cli.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace satdiag {

bool CliArgs::parse(int argc, const char* const* argv, std::string& error) {
  error.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const std::size_t eq = arg.find('=');
    const std::string name = eq == std::string::npos ? arg : arg.substr(0, eq);
    if (name.empty()) {
      error = "malformed flag '" + std::string(argv[i]) + "' (empty name)";
      return false;
    }
    if (eq != std::string::npos) {
      values_[name] = arg.substr(eq + 1);
      continue;
    }
    // `--flag value`, or a bare boolean `--flag` when followed by another
    // flag / end of argv.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[name] = argv[++i];
    } else {
      values_[name] = "true";
    }
  }
  return true;
}

bool CliArgs::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name, std::string def) const {
  queried_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& value = it->second;
  // strtoll with a null endptr silently accepted "2x" as 2 and "abc" as 0;
  // require the whole token to parse and be in range.
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE ||
      std::isspace(static_cast<unsigned char>(value[0]))) {
    throw CliUsageError("--" + name + ": expected an integer, got '" + value +
                        "'");
  }
  return parsed;
}

double CliArgs::get_double(const std::string& name, double def) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& value = it->second;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  // Full-string parse, finite result; strtod's inf/nan/hex spellings are
  // never meaningful budgets or scales, so they are rejected too.
  const bool overflowed = errno == ERANGE && std::abs(parsed) == HUGE_VAL;
  if (value.empty() || end != value.c_str() + value.size() || overflowed ||
      !std::isfinite(parsed) ||
      std::isspace(static_cast<unsigned char>(value[0])) ||
      value.find('x') != std::string::npos ||
      value.find('X') != std::string::npos) {
    throw CliUsageError("--" + name + ": expected a number, got '" + value +
                        "'");
  }
  return parsed;
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!queried_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace satdiag
