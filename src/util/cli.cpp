#include "util/cli.hpp"

#include <cstdlib>

namespace satdiag {

bool CliArgs::parse(int argc, const char* const* argv, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--flag value`, or a bare boolean `--flag` when followed by another
    // flag / end of argv.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  error.clear();
  return true;
}

bool CliArgs::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name, std::string def) const {
  queried_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def) const {
  queried_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double def) const {
  queried_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!queried_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace satdiag
