// Deterministic, seedable random number generation (xoshiro256**).
//
// Every stochastic component in satdiag (circuit generation, error injection,
// test generation, tie-breaking policies) draws from an explicitly passed Rng
// so that experiments are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace satdiag {

/// xoshiro256** 1.0 by Blackman & Vigna, seeded through SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias; bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli(p).
  bool next_bool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Pick a uniformly random element index; container must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

  /// Derive an independent child stream (for per-component sub-seeding).
  Rng split();

 private:
  std::uint64_t state_[4];
};

}  // namespace satdiag
