// Summary is header-only; this TU anchors the library target.
#include "util/stats.hpp"
