#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace satdiag {

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool parse_uint(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace satdiag
