#include "util/table.hpp"

#include <cmath>
#include <sstream>

#include "util/strings.hpp"

namespace satdiag {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string format_seconds(double s) { return strprintf("%.2f", s); }

std::string format_stat(double v) {
  if (std::isnan(v) || std::isinf(v)) return "-";
  return strprintf("%.2f", v);
}

}  // namespace satdiag
