// Streaming summary statistics used by the quality tables (Table 3).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace satdiag {

/// Accumulates min / max / mean / variance in a single pass (Welford).
class Summary {
 public:
  void add(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Minimum of the added samples; +inf when empty.
  double min() const { return min_; }
  /// Maximum of the added samples; -inf when empty.
  double max() const { return max_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace satdiag
