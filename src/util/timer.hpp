// Wall-clock timing and per-call budgets.
//
// The paper limits every diagnosis run to 30 CPU-minutes; Deadline mirrors
// that methodology so benches can report "DNF" cells instead of hanging.
#pragma once

#include <chrono>

namespace satdiag {

/// Monotonic stopwatch, started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget. A default-constructed Deadline never expires.
class Deadline {
 public:
  Deadline() = default;
  static Deadline after_seconds(double s) {
    Deadline d;
    d.limited_ = true;
    d.end_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(s));
    return d;
  }

  bool expired() const { return limited_ && Clock::now() >= end_; }
  bool limited() const { return limited_; }

  /// Remaining seconds (infinity-ish large value when unlimited).
  double remaining_seconds() const {
    if (!limited_) return 1e30;
    return std::chrono::duration<double>(end_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool limited_ = false;
  Clock::time_point end_{};
};

}  // namespace satdiag
