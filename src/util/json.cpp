#include "util/json.hpp"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace satdiag {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    for (int j = 0; j < indent_; ++j) out_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (pending_key_) {
    // key() already placed the comma/indent and the "key": prefix.
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Level& level = stack_.back();
  if (level.count > 0) out_ << ',';
  ++level.count;
  newline_indent();
}

void JsonWriter::key(std::string_view k) {
  // A key outside any object reads stack_.back() of an empty vector — UB.
  // Emission bugs must fail loudly in Debug instead of corrupting output.
  assert(!stack_.empty() && stack_.back().scope == Scope::kObject &&
         "JsonWriter::key() requires an open object scope");
  if (stack_.empty()) return;
  Level& level = stack_.back();
  if (level.count > 0) out_ << ',';
  ++level.count;
  newline_indent();
  out_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) out_ << ' ';
  pending_key_ = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back({Scope::kObject});
}

void JsonWriter::end_object() {
  const bool empty = stack_.back().count == 0;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back({Scope::kArray});
}

void JsonWriter::end_array() {
  const bool empty = stack_.back().count == 0;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ << ']';
}

void JsonWriter::value(std::string_view s) {
  before_value();
  out_ << '"' << json_escape(s) << '"';
}

void JsonWriter::value(bool b) {
  before_value();
  out_ << (b ? "true" : "false");
}

void JsonWriter::value(double d) {
  before_value();
  if (!std::isfinite(d)) {
    out_ << "null";
    return;
  }
  // Shortest form that round-trips: %.9g loses up to 8 low bits (report and
  // metrics consumers saw drifted wall-clock values), %.17g always round-
  // trips but prints noise digits like 0.10000000000000001. Try increasing
  // precisions and keep the first whose strtod readback is bit-exact.
  char buf[32];
  for (int precision : {9, 15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

void JsonWriter::raw(std::string_view json_fragment) {
  before_value();
  out_ << json_fragment;
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a bounded view. Every failure records the
/// byte offset so serve can echo "offset 17: expected ':'" to the client.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    if (!parse_value(out, 0)) {
      error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = fail_msg("trailing characters after the JSON document");
      return false;
    }
    return true;
  }

 private:
  bool set_error(const std::string& what) {
    if (error_.empty()) error_ = fail_msg(what);
    return false;
  }
  std::string fail_msg(const std::string& what) const {
    return "offset " + std::to_string(pos_) + ": " + what;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    // depth is 0 at the document root, so kJsonMaxDepth nested containers
    // parse (depths 0..kJsonMaxDepth-1) and one more is an error.
    if (depth >= kJsonMaxDepth) {
      return set_error("nesting deeper than " + std::to_string(kJsonMaxDepth));
    }
    skip_ws();
    if (pos_ >= text_.size()) return set_error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!consume_literal("null")) return set_error("invalid literal");
        out = JsonValue{};
        return true;
      case 't':
        if (!consume_literal("true")) return set_error("invalid literal");
        out = JsonValue{};
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (!consume_literal("false")) return set_error("invalid literal");
        out = JsonValue{};
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return true;
      case '"':
        out = JsonValue{};
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    ++pos_;  // '['
    out = JsonValue{};
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!parse_value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return set_error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return set_error("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    ++pos_;  // '{'
    out = JsonValue{};
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return set_error("expected a string object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return set_error("expected ':' after object key");
      }
      ++pos_;
      JsonValue member;
      if (!parse_value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return set_error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return set_error("expected ',' or '}' in object");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return set_error("unescaped control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return set_error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          // Surrogate pair => one astral code point.
          if (code >= 0xd800 && code <= 0xdbff) {
            if (text_.substr(pos_, 2) != "\\u") {
              return set_error("unpaired surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xdc00 || low > 0xdfff) {
              return set_error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            return set_error("unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          --pos_;
          return set_error("invalid escape character");
      }
    }
    return set_error("unterminated string");
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return set_error("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      unsigned digit;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A') + 10;
      else return set_error("invalid \\u escape digit");
      out = out * 16 + digit;
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == digits_start) {
      pos_ = start;
      return set_error("expected a value");
    }
    // JSON forbids leading zeros ("007").
    if (pos_ - digits_start > 1 && text_[digits_start] == '0') {
      pos_ = start;
      return set_error("leading zeros are not allowed");
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      const std::size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac_start) return set_error("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp_start) return set_error("expected exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    out = JsonValue{};
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(token.c_str(), nullptr);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out.is_integer = true;
        out.integer = v;
      }
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string& error) {
  JsonParser parser(text);
  JsonValue value;
  if (!parser.parse(value, error)) return false;
  out = std::move(value);
  return true;
}

}  // namespace satdiag
