#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace satdiag {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    for (int j = 0; j < indent_; ++j) out_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (pending_key_) {
    // key() already placed the comma/indent and the "key": prefix.
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Level& level = stack_.back();
  if (level.count > 0) out_ << ',';
  ++level.count;
  newline_indent();
}

void JsonWriter::key(std::string_view k) {
  Level& level = stack_.back();
  if (level.count > 0) out_ << ',';
  ++level.count;
  newline_indent();
  out_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) out_ << ' ';
  pending_key_ = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back({Scope::kObject});
}

void JsonWriter::end_object() {
  const bool empty = stack_.back().count == 0;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back({Scope::kArray});
}

void JsonWriter::end_array() {
  const bool empty = stack_.back().count == 0;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ << ']';
}

void JsonWriter::value(std::string_view s) {
  before_value();
  out_ << '"' << json_escape(s) << '"';
}

void JsonWriter::value(bool b) {
  before_value();
  out_ << (b ? "true" : "false");
}

void JsonWriter::value(double d) {
  before_value();
  if (!std::isfinite(d)) {
    out_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", d);
  out_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

void JsonWriter::raw(std::string_view json_fragment) {
  before_value();
  out_ << json_fragment;
}

}  // namespace satdiag
