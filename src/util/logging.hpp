// Minimal leveled logger.
//
// The library itself is quiet by default; diagnosis drivers and benches raise
// the level to Info to narrate progress. Safe to call from exec/ worker
// threads: the level is an atomic and each line is emitted with one
// fprintf(stderr) call (whole lines never tear, though lines from different
// workers may interleave in any order).
#pragma once

#include <sstream>
#include <string>

namespace satdiag {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Global log verbosity; messages above this level are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Optional line prefixes: a monotonic seconds-since-start timestamp plus
/// the emitting thread's exec/ lane (when one is set). Off by default so
/// golden-tested output stays stable; enabled by the CLI's --log-times or
/// the SATDIAG_LOG_TIMES environment variable (any value but "0").
bool log_timestamps();
void set_log_timestamps(bool enabled);

/// Tag this thread's log lines with an exec/ lane index (-1 clears the
/// tag). The thread pool sets it for workers; only shown when
/// log_timestamps() is on.
void set_log_lane(int lane);
int log_lane();

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace satdiag

#define SATDIAG_LOG(level)                            \
  if (static_cast<int>(level) <=                      \
      static_cast<int>(::satdiag::log_level()))       \
  ::satdiag::detail::LogLine(level)

#define SATDIAG_ERROR() SATDIAG_LOG(::satdiag::LogLevel::kError)
#define SATDIAG_WARN() SATDIAG_LOG(::satdiag::LogLevel::kWarn)
#define SATDIAG_INFO() SATDIAG_LOG(::satdiag::LogLevel::kInfo)
#define SATDIAG_DEBUG() SATDIAG_LOG(::satdiag::LogLevel::kDebug)
