// Column-aligned plain-text tables, used by the bench binaries to print the
// same row layout the paper's Tables 2 and 3 use.
#pragma once

#include <string>
#include <vector>

namespace satdiag {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with single-space padding and a header separator line.
  std::string to_string() const;

  /// Comma-separated form for downstream plotting.
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds the way the paper's runtime tables do ("0.01", "34.21").
std::string format_seconds(double s);

/// Format a double with two decimals, or "-" for NaN.
std::string format_stat(double v);

}  // namespace satdiag
