// Minimal streaming JSON writer for the observability layer (metrics
// snapshots, Chrome trace_event files, run reports), plus the reader the
// serve protocol parses request frames with.
//
// The writer has no DOM and no allocation beyond the nesting stack: callers
// emit begin/end scopes and key/value pairs in order and the writer inserts
// commas, indentation, and string escaping. Output is deterministic — pairs
// appear exactly in emission order — which is what lets the CLI report be
// golden-file tested with normalized numeric values. Doubles are emitted in
// the shortest form that round-trips through strtod bit-exactly.
//
// The reader (json_parse) is a strict RFC 8259 recursive-descent parser
// into a small JsonValue DOM. It is request-path hardened: bounded nesting
// depth, no trailing garbage, exact error positions — malformed network
// input must yield a structured error, never UB or a partial value.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace satdiag {

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  /// indent <= 0 writes compact single-line JSON.
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(out), indent_(indent) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by exactly one value or scope.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(double d);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void null();
  /// Splice a pre-serialized JSON fragment as one value (the CLI composes
  /// the run report from fragments built at different times).
  void raw(std::string_view json_fragment);

  template <typename T>
  void kv(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void newline_indent();

  std::ostream& out_;
  int indent_;
  struct Level {
    Scope scope;
    std::size_t count = 0;
  };
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Parsed JSON value. Object member order is preserved (insertion order),
/// matching the writer's determinism contract.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  /// Every number as a double, plus the exact integer when the token was
  /// integral and fits an int64 (protocol consumers want exact counts).
  double number = 0.0;
  bool is_integer = false;
  std::int64_t integer = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member with this key, or nullptr (objects; null otherwise).
  const JsonValue* find(std::string_view key) const;
};

/// Maximum array/object nesting json_parse accepts; deeper input is a parse
/// error, not a stack overflow (the serve transport feeds untrusted bytes).
inline constexpr std::size_t kJsonMaxDepth = 64;

/// Strict RFC 8259 parse of exactly one JSON document (trailing whitespace
/// allowed, trailing garbage is an error). Returns false and fills `error`
/// with a byte offset + reason on malformed input; `out` is then unchanged.
bool json_parse(std::string_view text, JsonValue& out, std::string& error);

}  // namespace satdiag
