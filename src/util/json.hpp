// Minimal streaming JSON writer for the observability layer (metrics
// snapshots, Chrome trace_event files, run reports).
//
// No DOM, no allocation beyond the nesting stack: callers emit begin/end
// scopes and key/value pairs in order and the writer inserts commas,
// indentation, and string escaping. Output is deterministic — pairs appear
// exactly in emission order — which is what lets the CLI report be golden-
// file tested with normalized numeric values.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace satdiag {

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  /// indent <= 0 writes compact single-line JSON.
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(out), indent_(indent) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by exactly one value or scope.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(double d);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void null();
  /// Splice a pre-serialized JSON fragment as one value (the CLI composes
  /// the run report from fragments built at different times).
  void raw(std::string_view json_fragment);

  template <typename T>
  void kv(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void newline_indent();

  std::ostream& out_;
  int indent_;
  struct Level {
    Scope scope;
    std::size_t count = 0;
  };
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

}  // namespace satdiag
