// Tiny flag parser for the example and bench executables.
//
// Supports `--name value` and `--name=value`; unknown flags are reported so a
// typo cannot silently fall back to defaults, and numeric getters validate
// the FULL value string — `--k 2x` or `--limit abc` throw CliUsageError
// naming the flag and the offending value instead of silently running with
// garbage budgets (the value-level analogue of the subcommand flag
// whitelist in tools/satdiag_cli.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace satdiag {

/// A flag value that cannot be interpreted as the requested type. Carries a
/// user-facing message like "--k: expected an integer, got '2x'"; the CLI
/// turns it into exit 2, the serve daemon into a structured "bad_request"
/// reply.
class CliUsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CliArgs {
 public:
  /// Parses argv; returns false (and fills `error`) on malformed input
  /// (currently: a `--` flag token with an empty name, e.g. "--" or "--=v").
  bool parse(int argc, const char* const* argv, std::string& error);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, std::string def) const;
  /// Strict base-10 integer; throws CliUsageError unless the whole value
  /// parses (optional sign, digits, in std::int64_t range).
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  /// Strict double; throws CliUsageError unless strtod consumes the whole
  /// value (inf/nan spellings are rejected — they are never valid budgets).
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Flags that were parsed but never queried (typo detection for drivers).
  std::vector<std::string> unused() const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Every parsed flag with its raw value (config echo for run reports).
  /// Does not mark anything as queried.
  const std::map<std::string, std::string>& raw_values() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace satdiag
