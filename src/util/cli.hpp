// Tiny flag parser for the example and bench executables.
//
// Supports `--name value` and `--name=value`; unknown flags are reported so a
// typo cannot silently fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace satdiag {

class CliArgs {
 public:
  /// Parses argv; returns false (and fills `error`) on malformed input.
  bool parse(int argc, const char* const* argv, std::string& error);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, std::string def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Flags that were parsed but never queried (typo detection for drivers).
  std::vector<std::string> unused() const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Every parsed flag with its raw value (config echo for run reports).
  /// Does not mark anything as queried.
  const std::map<std::string, std::string>& raw_values() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace satdiag
