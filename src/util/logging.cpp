#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace satdiag {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

bool env_log_times() {
  const char* value = std::getenv("SATDIAG_LOG_TIMES");
  return value != nullptr && *value != '\0' && std::string_view(value) != "0";
}

std::atomic<bool> g_timestamps{env_log_times()};
thread_local int g_lane = -1;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}

double seconds_since_start() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

bool log_timestamps() { return g_timestamps.load(std::memory_order_relaxed); }

void set_log_timestamps(bool enabled) {
  if (enabled) seconds_since_start();  // pin the epoch at enable time
  g_timestamps.store(enabled, std::memory_order_relaxed);
}

void set_log_lane(int lane) { g_lane = lane; }

int log_lane() { return g_lane; }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  // One fprintf per line: whole lines never tear across threads.
  if (log_timestamps()) {
    if (g_lane >= 0) {
      std::fprintf(stderr, "[satdiag %s %10.6f L%d] %s\n", level_tag(level),
                   seconds_since_start(), g_lane, message.c_str());
    } else {
      std::fprintf(stderr, "[satdiag %s %10.6f] %s\n", level_tag(level),
                   seconds_since_start(), message.c_str());
    }
    return;
  }
  std::fprintf(stderr, "[satdiag %s] %s\n", level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace satdiag
