#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace satdiag {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[satdiag %s] %s\n", level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace satdiag
