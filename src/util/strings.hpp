// Small string helpers shared by the .bench parser and CLI handling.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace satdiag {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are kept.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Uppercase copy (ASCII).
std::string to_upper(std::string_view s);

/// True when `s` parses entirely as a non-negative integer.
bool parse_uint(std::string_view s, std::uint64_t& out);

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace satdiag
