// ISCAS89 .bench format writer (round-trips with bench_parser).
#pragma once

#include <ostream>
#include <string>

#include "netlist/netlist.hpp"

namespace satdiag {

/// Emit `nl` in .bench syntax: INPUT lines, OUTPUT lines, definitions in gate
/// id order. Unnamed gates get synthetic "n<id>" names in the output.
void write_bench(std::ostream& out, const Netlist& nl);

std::string write_bench_string(const Netlist& nl);

}  // namespace satdiag
