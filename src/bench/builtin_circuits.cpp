#include "bench/builtin_circuits.hpp"

#include "bench/bench_parser.hpp"
#include "util/strings.hpp"

namespace satdiag {

Netlist builtin_c17() {
  static const char* kText = R"(
# c17 (ISCAS85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  return parse_bench_string(kText, "c17");
}

Netlist builtin_s27() {
  static const char* kText = R"(
# s27 (ISCAS89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";
  return parse_bench_string(kText, "s27");
}

FigureScenario builtin_fig5a() {
  // Reconvergent fanout: A drives both B and C, which reconverge at the
  // output gate D. With i0=1, i1=0 the whole core evaluates to 0 while the
  // specification demands D=1.
  //
  // Path tracing from D (AND, both fanins controlling) marks one of B/C,
  // then A; the candidate set is {D,B,A} (or {D,C,A}). The cover {B} of
  // that set is NOT a valid correction: forcing B=1 leaves D = AND(1,C=0)=0.
  FigureScenario s;
  Netlist nl("fig5a");
  const GateId i0 = nl.add_input("i0");
  const GateId i1 = nl.add_input("i1");
  const GateId a = nl.add_gate(GateType::kAnd, "A", {i0, i1});
  const GateId b = nl.add_gate(GateType::kBuf, "B", {a});
  const GateId c = nl.add_gate(GateType::kBuf, "C", {a});
  const GateId d = nl.add_gate(GateType::kAnd, "D", {b, c});
  nl.add_output(d);
  nl.finalize();
  s.circuit = std::move(nl);
  s.test_vector = {true, false};
  s.output_index = 0;
  s.correct_value = true;  // observed 0, specification says 1
  return s;
}

FigureScenario builtin_fig5b() {
  // Chain A -> C -> D -> E with side input B at D. Values: A=0, C=0, B=0,
  // D=AND(C,B)=0, E=BUF(D)=0; specification demands E=1.
  //
  // Path tracing (kFirst policy, D's fanins ordered (C,B)) marks
  // {E,D,C,A} — exactly the set quoted in Lemma 4 — and never marks B.
  // {A} and {B} alone are invalid corrections (the other AND input still
  // blocks), but {A,B} is valid: set covering can never return it because
  // B is outside the marked universe and {A,B} is a redundant cover.
  FigureScenario s;
  Netlist nl("fig5b");
  const GateId i0 = nl.add_input("i0");
  const GateId i1 = nl.add_input("i1");
  const GateId i2 = nl.add_input("i2");
  const GateId i3 = nl.add_input("i3");
  const GateId a = nl.add_gate(GateType::kAnd, "A", {i0, i1});
  const GateId b = nl.add_gate(GateType::kAnd, "B", {i2, i3});
  const GateId c = nl.add_gate(GateType::kBuf, "C", {a});
  const GateId d = nl.add_gate(GateType::kAnd, "D", {c, b});
  const GateId e = nl.add_gate(GateType::kBuf, "E", {d});
  nl.add_output(e);
  nl.finalize();
  s.circuit = std::move(nl);
  // i0=0 makes A=0; i3=0 makes B=0.
  s.test_vector = {false, true, true, false};
  s.output_index = 0;
  s.correct_value = true;  // observed 0, specification says 1
  return s;
}

std::vector<std::string> builtin_names() {
  return {"c17", "s27", "fig5a", "fig5b"};
}

Netlist make_builtin(const std::string& name) {
  if (name == "c17") return builtin_c17();
  if (name == "s27") return builtin_s27();
  if (name == "fig5a") return builtin_fig5a().circuit;
  if (name == "fig5b") return builtin_fig5b().circuit;
  throw NetlistError(strprintf("unknown builtin circuit '%s'", name.c_str()));
}

}  // namespace satdiag
