#include "bench/bench_writer.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace satdiag {
namespace {
std::string signal_name(const Netlist& nl, GateId g) {
  const std::string& name = nl.gate_name(g);
  if (!name.empty()) return name;
  return strprintf("n%u", g);
}
}  // namespace

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << " (written by satdiag)\n";
  for (GateId g : nl.inputs()) {
    out << "INPUT(" << signal_name(nl, g) << ")\n";
  }
  for (GateId g : nl.outputs()) {
    out << "OUTPUT(" << signal_name(nl, g) << ")\n";
  }
  for (GateId g = 0; g < nl.size(); ++g) {
    const GateType type = nl.type(g);
    if (type == GateType::kInput) continue;
    out << signal_name(nl, g) << " = " << gate_type_name(type) << "(";
    bool first = true;
    for (GateId f : nl.fanins(g)) {
      if (!first) out << ", ";
      first = false;
      out << signal_name(nl, f);
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream out;
  write_bench(out, nl);
  return out.str();
}

}  // namespace satdiag
