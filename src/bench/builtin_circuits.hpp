// Hand-written reference circuits.
//
//  * c17    — the classic 6-NAND ISCAS85 circuit (smoke tests, examples).
//  * s27    — the canonical small ISCAS89 sequential circuit (3 DFFs).
//  * fig5a  — the paper's Figure 5(a): a reconvergent circuit on which a set
//             cover ({B}) is not a valid correction (Lemma 2).
//  * fig5b  — the paper's Figure 5(b): a circuit with a valid correction
//             {A,B} that set covering cannot produce (Lemma 4).
//
// For fig5a/fig5b the construction in this file fixes fanin order so that
// path tracing with the kFirst policy reproduces exactly the candidate sets
// quoted in the paper's proofs; the accompanying FigureTest describes the
// intended erroneous test vector.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace satdiag {

Netlist builtin_c17();
Netlist builtin_s27();

/// A single-test diagnosis scenario for the Figure 5 circuits.
struct FigureScenario {
  Netlist circuit;
  std::vector<bool> test_vector;  // over circuit.inputs() in order
  std::size_t output_index = 0;   // index into circuit.outputs()
  bool correct_value = false;     // value the specification demands
};

FigureScenario builtin_fig5a();
FigureScenario builtin_fig5b();

/// Names accepted by make_builtin.
std::vector<std::string> builtin_names();
Netlist make_builtin(const std::string& name);

}  // namespace satdiag
