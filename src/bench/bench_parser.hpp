// ISCAS89 .bench format reader.
//
// Grammar (comments start with '#'):
//   INPUT(name)
//   OUTPUT(name)
//   name = TYPE(arg, arg, ...)
//
// Definitions may reference signals defined later in the file (ISCAS89 files
// do this for feedback through DFFs and occasionally for combinational
// forward references); the parser topologically orders definitions before
// emitting them into the Netlist, so gate ids follow dependency order.
#pragma once

#include <istream>
#include <stdexcept>
#include <string>

#include "netlist/netlist.hpp"

namespace satdiag {

class BenchParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse .bench text. Throws BenchParseError with a line number on malformed
/// input, undefined signals, duplicate definitions or combinational cycles.
Netlist parse_bench(std::istream& in, std::string circuit_name = "circuit");

/// Convenience overload for in-memory text.
Netlist parse_bench_string(const std::string& text,
                           std::string circuit_name = "circuit");

/// Read and parse a .bench file from disk.
Netlist parse_bench_file(const std::string& path);

}  // namespace satdiag
