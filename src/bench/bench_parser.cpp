#include "bench/bench_parser.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace satdiag {
namespace {

struct Definition {
  std::string name;
  GateType type = GateType::kBuf;
  std::vector<std::string> args;
  int line = 0;
  // DFS state for topological emission.
  enum class Mark { kWhite, kGray, kBlack } mark = Mark::kWhite;
  GateId id = kNoGate;
};

struct ParseState {
  std::map<std::string, Definition> defs;
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::map<std::string, int> input_lines;
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw BenchParseError(strprintf("line %d: %s", line, message.c_str()));
}

// Parses "HEAD(arg, arg, ...)" and returns {HEAD, args}.
bool parse_call(std::string_view text, std::string& head,
                std::vector<std::string>& args) {
  const std::size_t open = text.find('(');
  const std::size_t close = text.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open || trim(text.substr(close + 1)) != "") {
    return false;
  }
  head = std::string(trim(text.substr(0, open)));
  args.clear();
  const std::string_view inner = text.substr(open + 1, close - open - 1);
  if (trim(inner).empty()) return true;
  for (std::string_view piece : split(inner, ',')) {
    const std::string_view arg = trim(piece);
    if (arg.empty()) return false;
    args.emplace_back(arg);
  }
  return true;
}

class Emitter {
 public:
  Emitter(ParseState& state, Netlist& nl) : state_(state), nl_(nl) {}

  GateId emit(const std::string& name, int use_line) {
    auto def_it = state_.defs.find(name);
    if (def_it == state_.defs.end()) {
      auto in_it = state_.input_lines.find(name);
      if (in_it == state_.input_lines.end()) {
        fail(use_line, strprintf("undefined signal '%s'", name.c_str()));
      }
      return nl_.find(name);  // inputs are pre-created
    }
    Definition& def = def_it->second;
    if (def.id != kNoGate) return def.id;
    if (def.mark == Definition::Mark::kGray) {
      fail(def.line,
           strprintf("combinational cycle through '%s'", name.c_str()));
    }
    def.mark = Definition::Mark::kGray;
    if (def.type == GateType::kDff) {
      // Break the (legal, sequential) cycle: create now, resolve data later.
      def.id = nl_.add_dff(def.name);
      pending_dffs_.push_back(&def);
    } else {
      std::vector<GateId> fanins;
      fanins.reserve(def.args.size());
      for (const std::string& arg : def.args) {
        fanins.push_back(emit(arg, def.line));
      }
      def.id = nl_.add_gate(def.type, def.name, std::move(fanins));
    }
    def.mark = Definition::Mark::kBlack;
    return def.id;
  }

  void resolve_dffs() {
    // DFF data cones may include definitions reachable only through DFFs.
    for (std::size_t i = 0; i < pending_dffs_.size(); ++i) {
      Definition* def = pending_dffs_[i];
      nl_.set_dff_input(def->id, emit(def->args[0], def->line));
    }
  }

 private:
  ParseState& state_;
  Netlist& nl_;
  std::vector<Definition*> pending_dffs_;
};

}  // namespace

Netlist parse_bench(std::istream& in, std::string circuit_name) {
  ParseState state;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    std::string head;
    std::vector<std::string> args;
    if (eq == std::string_view::npos) {
      if (!parse_call(line, head, args) || args.size() != 1) {
        fail(line_no, "expected INPUT(name) or OUTPUT(name)");
      }
      if (iequals(head, "INPUT")) {
        if (!state.input_lines.emplace(args[0], line_no).second) {
          fail(line_no, strprintf("duplicate INPUT '%s'", args[0].c_str()));
        }
        state.input_names.push_back(args[0]);
      } else if (iequals(head, "OUTPUT")) {
        state.output_names.push_back(args[0]);
      } else {
        fail(line_no, strprintf("unknown directive '%s'", head.c_str()));
      }
      continue;
    }

    Definition def;
    def.name = std::string(trim(line.substr(0, eq)));
    def.line = line_no;
    if (def.name.empty()) fail(line_no, "empty signal name");
    if (!parse_call(trim(line.substr(eq + 1)), head, args)) {
      fail(line_no, "expected name = TYPE(args)");
    }
    const auto type = gate_type_from_name(head);
    if (!type || *type == GateType::kInput) {
      fail(line_no, strprintf("unknown gate type '%s'", head.c_str()));
    }
    def.type = *type;
    def.args = std::move(args);
    if (def.type == GateType::kConst0 || def.type == GateType::kConst1) {
      if (!def.args.empty()) fail(line_no, "constants take no arguments");
    } else if (!arity_ok(def.type, def.args.size())) {
      fail(line_no, strprintf("%s with %zu arguments", head.c_str(),
                              def.args.size()));
    }
    if (state.input_lines.count(def.name)) {
      fail(line_no,
           strprintf("signal '%s' already declared INPUT", def.name.c_str()));
    }
    if (!state.defs.emplace(def.name, def).second) {
      fail(line_no, strprintf("duplicate definition of '%s'", def.name.c_str()));
    }
  }

  Netlist nl(std::move(circuit_name));
  for (const std::string& name : state.input_names) nl.add_input(name);
  Emitter emitter(state, nl);
  // Emit every definition (not only those reachable from outputs) so the
  // netlist faithfully mirrors the file.
  for (auto& [name, def] : state.defs) {
    (void)def;
    emitter.emit(name, def.line);
  }
  emitter.resolve_dffs();
  for (const std::string& name : state.output_names) {
    const GateId g = nl.find(name);
    if (g == kNoGate) {
      fail(0, strprintf("OUTPUT of undefined signal '%s'", name.c_str()));
    }
    nl.add_output(g);
  }
  nl.finalize();
  return nl;
}

Netlist parse_bench_string(const std::string& text, std::string circuit_name) {
  std::istringstream in(text);
  return parse_bench(in, std::move(circuit_name));
}

Netlist parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw BenchParseError(strprintf("cannot open '%s'", path.c_str()));
  }
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return parse_bench(in, std::move(name));
}

}  // namespace satdiag
