#include "cache/artifact_cache.hpp"

#include <cassert>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace satdiag::cache {

namespace {

constexpr std::uint64_t kMul1 = 0xff51afd7ed558ccdULL;
constexpr std::uint64_t kMul2 = 0xc4ceb9fe1a85ec53ULL;

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= kMul1;
  x ^= x >> 33;
  x *= kMul2;
  x ^= x >> 33;
  return x;
}

}  // namespace

KeyBuilder& KeyBuilder::mix(std::uint64_t v) {
  hi_ = mix64(hi_ ^ v);
  lo_ = mix64(lo_ + (v * 0x9e3779b97f4a7c15ULL) + (hi_ << 1));
  return *this;
}

KeyBuilder& KeyBuilder::mix(std::string_view s) {
  mix(s.size());
  std::uint64_t word = 0;
  std::size_t fill = 0;
  for (const char c : s) {
    word = (word << 8) | static_cast<unsigned char>(c);
    if (++fill == 8) {
      mix(word);
      word = 0;
      fill = 0;
    }
  }
  if (fill != 0) mix(word);
  return *this;
}

KeyBuilder& KeyBuilder::mix(const std::vector<bool>& bits) {
  mix(bits.size());
  std::uint64_t word = 0;
  std::size_t fill = 0;
  for (const bool b : bits) {
    word = (word << 1) | (b ? 1u : 0u);
    if (++fill == 64) {
      mix(word);
      word = 0;
      fill = 0;
    }
  }
  if (fill != 0) mix(word);
  return *this;
}

KeyBuilder& KeyBuilder::mix_double(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return mix(bits);
}

ArtifactKey netlist_fingerprint(const Netlist& nl) {
  assert(nl.finalized());
  KeyBuilder kb(ArtifactKind::kNetlist);
  kb.mix(nl.size());
  for (GateId g = 0; g < nl.size(); ++g) {
    kb.mix(static_cast<std::uint64_t>(nl.type(g)));
    const auto fanins = nl.fanins(g);
    kb.mix(fanins.size());
    for (const GateId f : fanins) kb.mix(f);
  }
  const auto mix_list = [&kb](const std::vector<GateId>& gates) {
    kb.mix(gates.size());
    for (const GateId g : gates) kb.mix(g);
  };
  mix_list(nl.inputs());
  mix_list(nl.outputs());
  mix_list(nl.dffs());
  return kb.key();
}

ArtifactCache& ArtifactCache::global() {
  static ArtifactCache cache;
  return cache;
}

std::shared_ptr<const void> ArtifactCache::get_or_build_erased(
    const ArtifactKey& key, const std::function<Erased()>& build) {
  std::unique_lock lk(mu_);
  if (const auto it = entries_.find(key); it != entries_.end()) {
    it->second.last_used = ++tick_;
    ++hits_;
    auto future = it->second.future;  // survives eviction of the entry
    lk.unlock();
    // The span covers the wait on an in-flight build too — a "hit" that
    // blocks shows up as a long cache.hit next to another thread's
    // cache.build in the trace.
    obs::Span span("cache.hit");
    return future.get();  // blocks while the first caller is still building
  }
  ++misses_;
  std::promise<std::shared_ptr<const void>> promise;
  Entry entry;
  entry.future = promise.get_future().share();
  entry.last_used = ++tick_;
  entries_.emplace(key, std::move(entry));
  lk.unlock();

  Erased built;
  try {
    static obs::Counter& builds =
        obs::MetricsRegistry::global().counter("cache.builds");
    builds.add(1);
    obs::Span span("cache.build");
    built = build();
  } catch (...) {
    lk.lock();
    entries_.erase(key);
    lk.unlock();
    promise.set_exception(std::current_exception());
    throw;
  }

  lk.lock();
  if (const auto it = entries_.find(key); it != entries_.end()) {
    it->second.bytes = built.bytes;
    it->second.ready = true;
    bytes_ += built.bytes;
    evict_locked();
  }
  lk.unlock();
  promise.set_value(built.value);
  return built.value;
}

void ArtifactCache::evict_locked() {
  while (bytes_ > capacity_bytes_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.ready) continue;  // in flight: a builder owns it
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything in flight
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
  }
}

void ArtifactCache::set_capacity_bytes(std::size_t capacity) {
  std::lock_guard lk(mu_);
  capacity_bytes_ = capacity;
  evict_locked();
}

void ArtifactCache::clear() {
  std::lock_guard lk(mu_);
  // In-flight entries stay: their builders will finish and publish; evicting
  // a promise out from under a builder would drop its set_value.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.ready) {
      bytes_ -= it->second.bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard lk(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.bytes = bytes_;
  s.entries = entries_.size();
  return s;
}

void ArtifactCache::reset_stats() {
  std::lock_guard lk(mu_);
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

}  // namespace satdiag::cache
