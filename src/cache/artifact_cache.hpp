// Keyed compile-artifact cache (ROADMAP item 2's "repeat requests on the
// same circuit pay only the solve" layer).
//
// Artifacts are immutable compile products — parsed/generated netlists,
// full-scan views, CompiledNetlist opcode streams, golden output rows, and
// ClauseStream instance templates — addressed by a 128-bit content key
// (ArtifactKind + whatever the producer mixes in: netlist fingerprint,
// instrumented-universe hash, cone root, encoder options, ...). Consumers
// hold them as shared_ptr<const T>; a cached value is never mutated after
// construction, matching the netlist library's immutability contract (the
// only post-finalize mutation in-tree is substitute_type, and a substituted
// netlist fingerprints differently, so it can never alias a cached entry).
//
// get_or_build is the single entry point and is safe under concurrency: the
// first caller of a key builds while holding no lock, every concurrent
// caller of the same key blocks on the entry's shared_future instead of
// duplicating the build (this is what lets N parallel BSAT shards stamp from
// ONE template — the first shard encodes, the rest wait and reuse). The
// cache is bounded: least-recently-used ready entries are evicted once the
// byte budget is exceeded; outstanding shared_ptrs keep evicted values alive.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"

namespace satdiag::cache {

/// 128-bit content-addressed key. Domain separation comes from mixing an
/// ArtifactKind first; collisions across kinds would confuse the type-erased
/// store, so every producer goes through KeyBuilder::kind().
struct ArtifactKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const ArtifactKey&, const ArtifactKey&) = default;
};

struct ArtifactKeyHash {
  std::size_t operator()(const ArtifactKey& k) const {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

enum class ArtifactKind : std::uint64_t {
  kNetlist = 1,      // generated circuit / full-scan comb view
  kCompiled = 2,     // CompiledCircuit (netlist + opcode stream)
  kGoldenOutputs = 3,  // golden output rows per test set
  kCone = 4,         // fanin-cone flag vector per root set
  kCopyTemplate = 5,  // ClauseStream diagnosis-copy template
};

/// Incremental 128-bit mixer (two lanes of splitmix-style finalization —
/// not cryptographic, just well-spread for content addressing).
class KeyBuilder {
 public:
  explicit KeyBuilder(ArtifactKind kind) {
    mix(static_cast<std::uint64_t>(kind));
  }

  KeyBuilder& mix(std::uint64_t v);
  KeyBuilder& mix(std::string_view s);
  KeyBuilder& mix(const std::vector<bool>& bits);
  KeyBuilder& mix(const ArtifactKey& k) { return mix(k.hi), mix(k.lo); }
  KeyBuilder& mix_double(double v);

  ArtifactKey key() const { return ArtifactKey{hi_, lo_}; }

 private:
  std::uint64_t hi_ = 0x6a09e667f3bcc908ULL;
  std::uint64_t lo_ = 0xbb67ae8584caa73bULL;
};

/// Structural fingerprint of a finalized netlist: size, gate types, fanins,
/// input/output/DFF lists. Gate names are deliberately excluded — templates
/// and compiled streams depend only on structure. O(|gates| + |edges|).
ArtifactKey netlist_fingerprint(const Netlist& nl);

class ArtifactCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;
    std::uint64_t entries = 0;
  };

  static constexpr std::size_t kDefaultCapacityBytes = 256ull << 20;

  explicit ArtifactCache(std::size_t capacity_bytes = kDefaultCapacityBytes)
      : capacity_bytes_(capacity_bytes) {}

  /// The process-wide cache every pipeline layer shares.
  static ArtifactCache& global();

  /// Return the artifact under `key`, building it with `build` on a miss.
  /// `build` returns {value, approximate bytes}; it runs without the cache
  /// lock, and concurrent callers of the same key wait for the first
  /// builder's result instead of building again (they count as hits). A
  /// throwing builder removes the entry so later calls retry.
  template <typename T>
  std::shared_ptr<const T> get_or_build(
      const ArtifactKey& key,
      const std::function<std::pair<std::shared_ptr<const T>, std::size_t>()>&
          build) {
    auto erased = get_or_build_erased(key, [&build]() -> Erased {
      auto [value, bytes] = build();
      return Erased{std::shared_ptr<const void>(std::move(value)), bytes};
    });
    return std::static_pointer_cast<const T>(std::move(erased));
  }

  void set_capacity_bytes(std::size_t capacity);
  void clear();
  Stats stats() const;
  void reset_stats();

 private:
  struct Erased {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
  };
  struct Entry {
    std::shared_future<std::shared_ptr<const void>> future;
    std::size_t bytes = 0;
    std::uint64_t last_used = 0;
    bool ready = false;
  };

  std::shared_ptr<const void> get_or_build_erased(
      const ArtifactKey& key, const std::function<Erased()>& build);
  /// Drop least-recently-used ready entries until under budget. Lock held.
  void evict_locked();

  mutable std::mutex mu_;
  std::unordered_map<ArtifactKey, Entry, ArtifactKeyHash> entries_;
  std::size_t capacity_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace satdiag::cache
