#include "obs/report.hpp"

#include <fstream>
#include <sstream>
#include <string_view>

#include "cache/artifact_cache.hpp"
#include "cnf/clause_stream.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace satdiag::obs {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Register the full standard catalogue so snapshots expose a stable key set
/// regardless of which code paths actually ran (the report golden test and
/// bench_runner key off the names).
void ensure_standard_metrics() {
  MetricsRegistry& reg = MetricsRegistry::global();
  for (const char* name :
       {"sat.conflicts", "sat.decisions", "sat.propagations",
        "sat.binary_propagations", "sat.restarts", "sat.learned",
        "sat.removed", "sat.gc_runs", "sat.inprocess_runs", "sat.subsumed",
        "sat.strengthened", "sat.vivified", "sat.vars_eliminated",
        "sat.failed_literals", "sat.learnts_exported", "sat.learnts_imported",
        "exec.shards_run", "cache.builds"}) {
    reg.counter(name);
  }
  for (const char* name :
       {"sat.tier_core", "sat.tier_mid", "sat.tier_local", "cache.hits",
        "cache.misses", "cache.evictions", "cache.bytes", "cache.entries",
        "cnf.templates_built", "cnf.copies_stamped", "cnf.clauses_stamped"}) {
    reg.gauge(name);
  }
}

}  // namespace

void add_solver_stats(const sat::Solver::Stats& stats) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("sat.conflicts").add(stats.conflicts);
  reg.counter("sat.decisions").add(stats.decisions);
  reg.counter("sat.propagations").add(stats.propagations);
  reg.counter("sat.binary_propagations").add(stats.binary_propagations);
  reg.counter("sat.restarts").add(stats.restarts);
  reg.counter("sat.learned").add(stats.learned);
  reg.counter("sat.removed").add(stats.removed);
  reg.counter("sat.gc_runs").add(stats.gc_runs);
  reg.counter("sat.inprocess_runs").add(stats.inprocess_runs);
  reg.counter("sat.subsumed").add(stats.subsumed);
  reg.counter("sat.strengthened").add(stats.strengthened);
  reg.counter("sat.vivified").add(stats.vivified);
  reg.counter("sat.vars_eliminated").add(stats.vars_eliminated);
  reg.counter("sat.failed_literals").add(stats.failed_literals);
  reg.counter("sat.learnts_exported").add(stats.learnts_exported);
  reg.counter("sat.learnts_imported").add(stats.learnts_imported);
  // Tier sizes are end-of-run snapshots, not accumulating counts.
  reg.gauge("sat.tier_core").set(static_cast<std::int64_t>(stats.tier_core));
  reg.gauge("sat.tier_mid").set(static_cast<std::int64_t>(stats.tier_mid));
  reg.gauge("sat.tier_local").set(static_cast<std::int64_t>(stats.tier_local));
}

void refresh_process_metrics() {
  ensure_standard_metrics();
  MetricsRegistry& reg = MetricsRegistry::global();
  const cache::ArtifactCache::Stats cs = cache::ArtifactCache::global().stats();
  reg.gauge("cache.hits").set(static_cast<std::int64_t>(cs.hits));
  reg.gauge("cache.misses").set(static_cast<std::int64_t>(cs.misses));
  reg.gauge("cache.evictions").set(static_cast<std::int64_t>(cs.evictions));
  reg.gauge("cache.bytes").set(static_cast<std::int64_t>(cs.bytes));
  reg.gauge("cache.entries").set(static_cast<std::int64_t>(cs.entries));
  const ClauseStreamStats ss = clause_stream_stats();
  reg.gauge("cnf.templates_built")
      .set(static_cast<std::int64_t>(ss.templates_built));
  reg.gauge("cnf.copies_stamped")
      .set(static_cast<std::int64_t>(ss.copies_stamped));
  reg.gauge("cnf.clauses_stamped")
      .set(static_cast<std::int64_t>(ss.clauses_stamped));
}

void RunReport::write_json(std::ostream& out, int indent) const {
  refresh_process_metrics();
  const std::vector<PhaseAgg> spans = aggregate_phases();

  JsonWriter w(out, indent);
  w.begin_object();
  w.kv("schema", kSchemaName);
  w.kv("schema_version", kSchemaVersion);
  w.kv("command", command);
  w.key("config");
  w.begin_object();
  for (const auto& [name, value] : config) w.kv(name, value);
  w.end_object();
  w.kv("wall_seconds", wall_seconds);

  const auto write_agg_array = [&](bool phases_only) {
    w.begin_array();
    for (const PhaseAgg& agg : spans) {
      if (phases_only != starts_with(agg.name, "phase.")) continue;
      w.begin_object();
      w.kv("name", agg.name);
      w.kv("count", agg.count);
      w.kv("seconds", agg.seconds);
      w.end_object();
    }
    w.end_array();
  };
  w.key("phases");
  write_agg_array(/*phases_only=*/true);
  w.key("spans");
  write_agg_array(/*phases_only=*/false);

  w.key("trace");
  w.begin_object();
  w.kv("events", static_cast<std::uint64_t>(num_events()));
  w.kv("dropped", dropped_events());
  w.end_object();

  w.key("metrics");
  std::ostringstream metrics_json;
  MetricsRegistry::global().write_json(metrics_json, /*indent=*/0);
  w.raw(metrics_json.str());

  w.key("result");
  w.raw(result_json.empty() ? std::string("{}") : result_json);
  w.end_object();
  out << '\n';
}

bool RunReport::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return static_cast<bool>(out);
}

}  // namespace satdiag::obs
