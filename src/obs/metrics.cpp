#include "obs/metrics.hpp"

#include <stdexcept>

#include "util/json.hpp"

namespace satdiag::obs {

namespace detail {
std::size_t shard_hint() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t hint =
      next.fetch_add(1, std::memory_order_relaxed);
  return hint;
}
}  // namespace detail

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> totals(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < totals.size(); ++b) {
      totals[b] += shard->buckets[b].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts()) total += c;
  return total;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->sum.load(std::memory_order_relaxed);
  }
  return total;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m{MetricKind::kCounter, std::make_unique<Counter>(), nullptr,
             nullptr};
    it = metrics_.emplace(std::string(name), std::move(m)).first;
  } else if (it->second.kind != MetricKind::kCounter) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m{MetricKind::kGauge, nullptr, std::make_unique<Gauge>(), nullptr};
    it = metrics_.emplace(std::string(name), std::move(m)).first;
  } else if (it->second.kind != MetricKind::kGauge) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m{MetricKind::kHistogram, nullptr, nullptr,
             std::make_unique<Histogram>(bounds)};
    it = metrics_.emplace(std::string(name), std::move(m)).first;
  } else if (it->second.kind != MetricKind::kHistogram) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return *it->second.histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> samples;
  samples.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = metric.kind;
    switch (metric.kind) {
      case MetricKind::kCounter:
        sample.counter = metric.counter->value();
        break;
      case MetricKind::kGauge:
        sample.gauge = metric.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *metric.histogram;
        const std::vector<std::uint64_t> counts = h.bucket_counts();
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
          sample.buckets.emplace_back(h.bounds()[b], counts[b]);
        }
        sample.overflow = counts.back();
        sample.hist_count = h.count();
        sample.hist_sum = h.sum();
        break;
      }
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

void MetricsRegistry::write_json(std::ostream& out, int indent) const {
  const std::vector<MetricSample> samples = snapshot();
  JsonWriter w(out, indent);
  w.begin_object();
  for (const MetricSample& sample : samples) {
    w.key(sample.name);
    switch (sample.kind) {
      case MetricKind::kCounter:
        w.value(sample.counter);
        break;
      case MetricKind::kGauge:
        w.value(sample.gauge);
        break;
      case MetricKind::kHistogram:
        w.begin_object();
        w.key("buckets");
        w.begin_array();
        for (const auto& [bound, count] : sample.buckets) {
          w.begin_object();
          w.kv("le", bound);
          w.kv("count", count);
          w.end_object();
        }
        w.begin_object();
        w.key("le");
        w.value("inf");
        w.kv("count", sample.overflow);
        w.end_object();
        w.end_array();
        w.kv("count", sample.hist_count);
        w.kv("sum", sample.hist_sum);
        w.end_object();
        break;
    }
  }
  w.end_object();
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, metric] : metrics_) {
    switch (metric.kind) {
      case MetricKind::kCounter:
        metric.counter->reset();
        break;
      case MetricKind::kGauge:
        metric.gauge->set(0);
        break;
      case MetricKind::kHistogram:
        metric.histogram->reset();
        break;
    }
  }
}

}  // namespace satdiag::obs
