// Structured tracing: RAII Spans over per-thread ring buffers, emitted as
// Chrome trace_event JSON (chrome://tracing / Perfetto) and aggregated into
// the run report's phase timings.
//
// Hot-path contract:
//  * When tracing is disabled (the default), constructing a Span costs one
//    relaxed atomic load and a branch — no clock read, no allocation.
//  * When enabled, a completed span is two steady_clock reads plus one store
//    into the calling thread's ring buffer. No locks anywhere on the record
//    path: each ring is owned by exactly one thread.
//  * Memory is bounded: rings hold ring_capacity() events and overwrite the
//    oldest on overflow (drop-oldest; dropped_events() counts the loss).
//    Because events are pushed at span *end*, long-lived enclosing phase
//    spans are pushed last and survive any overflow.
//  * BCP-adjacent call sites use SATDIAG_HOT_SPAN, compiled out entirely
//    unless SATDIAG_OBS_HOT_SPANS is defined — zero cost even for the
//    disabled-check when off.
//
// Drain contract: write_chrome_trace()/aggregate_phases() walk every
// thread's ring without synchronizing with concurrent writers. Call them
// only after worker threads have been joined (the exec/ pools are scoped to
// each diagnosis call, so the CLI's end-of-run drain point is always after
// every join). Span names and arg names must be string literals (or
// otherwise outlive the drain) — rings store the pointers.
//
// Determinism contract: spans only record; nothing reads trace state back
// into engine decisions, so tracing cannot perturb results.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace satdiag::obs {

/// Nanoseconds since the process's trace epoch (first use).
std::uint64_t trace_now_ns();

bool tracing_enabled();
void set_tracing_enabled(bool enabled);

/// Per-thread ring capacity in events. Takes effect for rings created after
/// the call (reset_tracing() drops existing rings); tests shrink it to force
/// overflow.
void set_ring_capacity(std::size_t events);
std::size_t ring_capacity();

/// Drop every recorded event and ring, re-arm the capacity, and zero the
/// drop counter. Same drain contract as the readers: no concurrent writers.
void reset_tracing();

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  // Up to two small integer args (shard index, thread lane, bound, ...).
  const char* arg1_name = nullptr;
  const char* arg2_name = nullptr;
  std::int64_t arg1 = 0;
  std::int64_t arg2 = 0;
};

class Span {
 public:
  /// Tag for a span that starts later via open() — lets the span object be
  /// declared early so its scope (and destructor) covers teardown of locals
  /// declared after it.
  struct Deferred {};
  static constexpr Deferred kDeferred{};

  explicit Span(Deferred) {}
  explicit Span(const char* name) {
    if (tracing_enabled()) start(name);
  }
  Span(const char* name, const char* arg1_name, std::int64_t arg1) {
    if (tracing_enabled()) {
      start(name);
      arg1_name_ = arg1_name;
      arg1_ = arg1;
    }
  }
  Span(const char* name, const char* arg1_name, std::int64_t arg1,
       const char* arg2_name, std::int64_t arg2) {
    if (tracing_enabled()) {
      start(name);
      arg1_name_ = arg1_name;
      arg1_ = arg1;
      arg2_name_ = arg2_name;
      arg2_ = arg2;
    }
  }
  ~Span() {
    if (name_ != nullptr) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Start a deferred span now (no-op when tracing is disabled).
  void open(const char* name) {
    if (tracing_enabled()) start(name);
  }

  /// Finish the span now instead of at scope exit (idempotent; the
  /// destructor becomes a no-op). For phases that end mid-function.
  void close() {
    if (name_ != nullptr) {
      finish();
      name_ = nullptr;
    }
  }

 private:
  void start(const char* name) {
    name_ = name;
    start_ns_ = trace_now_ns();
  }
  void finish();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  const char* arg1_name_ = nullptr;
  const char* arg2_name_ = nullptr;
  std::int64_t arg1_ = 0;
  std::int64_t arg2_ = 0;
};

/// Events recorded so far across all rings (post-drop), and events lost to
/// ring overflow. Drain contract applies.
std::size_t num_events();
std::uint64_t dropped_events();

/// All retained events in (tid, push order) — for tests and aggregation.
std::vector<TraceEvent> collect_events();

/// Chrome trace_event JSON: one complete ("ph":"X") event per span, with
/// tid = the recording thread's ring id. Loads in chrome://tracing and
/// Perfetto. Drain contract applies.
void write_chrome_trace(std::ostream& out);
/// Returns false when the file cannot be written.
bool write_chrome_trace_file(const std::string& path);

/// Wall-clock totals per span name, name-sorted — the run report's phase
/// aggregator. Nested spans each contribute their own full duration; the
/// report's top-level phase split uses the "phase."-prefixed siblings,
/// which never nest.
struct PhaseAgg {
  std::string name;
  std::uint64_t count = 0;
  double seconds = 0.0;
};
std::vector<PhaseAgg> aggregate_phases();

}  // namespace satdiag::obs

// Spans on BCP-adjacent paths compile away entirely unless the build opts in
// (-DSATDIAG_OBS_HOT_SPANS); `var` names the span object so a site can hold
// several.
#if defined(SATDIAG_OBS_HOT_SPANS)
#define SATDIAG_HOT_SPAN(var, ...) ::satdiag::obs::Span var(__VA_ARGS__)
#else
#define SATDIAG_HOT_SPAN(var, ...) \
  do {                             \
  } while (false)
#endif
