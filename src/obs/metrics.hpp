// MetricsRegistry — the process-wide counters/gauges/histograms substrate
// (ISSUE 9 tentpole; ROADMAP item 2's stats-endpoint prerequisite).
//
// One registration API with stable dotted names ("sat.conflicts",
// "cache.hits", "exec.shards_run", ...) replaces the scattered per-subsystem
// stats structs as the *reporting* surface: hot engines keep their own local
// counters (sat::Solver::Stats stays the per-solve source of truth — no
// atomic traffic inside BCP) and publish into the registry at merge points,
// while coarse-grained producers (exec shards, cache builds) increment
// registry metrics directly.
//
// Concurrency: Counter and Histogram are lock-free sharded — each thread
// hashes to one of kShards cache-line-padded atomic lanes, adds are relaxed
// atomic fetch_adds, and value() aggregates the lanes on read. Gauge is a
// single atomic. Registration takes a mutex (cold path); the returned
// references are stable for the registry's lifetime, so call sites cache
// them in function-local statics.
//
// Determinism contract: metrics are write-mostly observability state; no
// engine reads them back, so they can never perturb results (the thread-
// invariance tests stay bit-identical with metrics on).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace satdiag::obs {

namespace detail {
/// Small per-thread shard hint: threads are striped over the counter lanes
/// in first-use order, so a thread pool's lanes never contend on one line.
std::size_t shard_hint();
}  // namespace detail

class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) {
    shards_[detail::shard_hint() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram over non-negative integer samples (counts,
/// microseconds, ...). Bucket i counts samples <= bounds[i]; one implicit
/// overflow bucket collects the rest. Buckets and the running sum/count are
/// sharded like Counter.
class Histogram {
 public:
  static constexpr std::size_t kShards = 8;

  explicit Histogram(std::span<const std::uint64_t> bounds)
      : bounds_(bounds.begin(), bounds.end()),
        shards_(kShards) {
    for (auto& shard : shards_) {
      shard = std::make_unique<Shard>(bounds_.size() + 1);
    }
  }

  void observe(std::uint64_t sample) {
    std::size_t b = 0;
    while (b < bounds_.size() && sample > bounds_[b]) ++b;
    Shard& shard = *shards_[detail::shard_hint() % kShards];
    shard.buckets[b].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(sample, std::memory_order_relaxed);
  }

  void reset() {
    for (auto& shard : shards_) {
      for (auto& bucket : shard->buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      shard->sum.store(0, std::memory_order_relaxed);
    }
  }

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// Aggregated bucket counts (bounds().size() + 1 entries, last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  std::uint64_t sum() const;

 private:
  struct Shard {
    explicit Shard(std::size_t n) : buckets(n) {}
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> sum{0};
  };
  std::vector<std::uint64_t> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time view of one metric, as produced by snapshot().
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;  // kCounter
  std::int64_t gauge = 0;     // kGauge
  // kHistogram: per-bucket (upper bound, count) pairs + overflow/sum/count.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  std::uint64_t overflow = 0;
  std::uint64_t hist_count = 0;
  std::uint64_t hist_sum = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem publishes into.
  static MetricsRegistry& global();

  /// Register-or-fetch by stable dotted name. The same name always returns
  /// the same object; requesting an existing name as a different kind
  /// throws std::logic_error (name collisions are registration bugs).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::span<const std::uint64_t> bounds);

  /// Name-sorted point-in-time samples of every registered metric.
  std::vector<MetricSample> snapshot() const;

  /// The report's "metrics" section: one flat JSON object keyed by dotted
  /// name; histograms expand to {"buckets": [...], "count": n, "sum": s}.
  void write_json(std::ostream& out, int indent = 2) const;

  /// Zero every counter/gauge/histogram (tests; names stay registered).
  void reset_values();

 private:
  struct Metric {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  // std::map keeps snapshot()/write_json() name-sorted for free; node-based
  // storage keeps metric addresses stable across registrations.
  mutable std::mutex mu_;
  std::map<std::string, Metric, std::less<>> metrics_;
};

}  // namespace satdiag::obs
