// Machine-readable run reports (schema "satdiag.report") plus the glue that
// publishes the pre-existing scattered stats structs into the
// MetricsRegistry under their stable dotted names.
//
// One report = one JSON object per CLI run:
//   {
//     "schema": "satdiag.report", "schema_version": 1,
//     "command": "...", "config": {flag: value, ...},
//     "wall_seconds": W,
//     "phases": [{"name": "phase.build", "count": n, "seconds": s}, ...],
//     "spans":  [every aggregated span name, same shape],
//     "trace": {"events": n, "dropped": d},
//     "metrics": { dotted-name: value, ... },
//     "result": {command-specific summary}
//   }
// "phases" holds only the non-nesting "phase."-prefixed spans, so their
// seconds partition the run's wall-clock (the acceptance bound: sum within
// 10% of wall_seconds on a single-threaded run). tools/bench_runner.py and
// the future serve daemon consume the same artifact — bump kSchemaVersion
// on any incompatible shape change (see README "Observability").
#pragma once

#include <map>
#include <ostream>
#include <string>

#include "sat/solver.hpp"

namespace satdiag::obs {

inline constexpr int kSchemaVersion = 1;
inline constexpr const char* kSchemaName = "satdiag.report";

/// Add a solver's per-run counters into the registry's "sat.*" counters
/// (the diagnosis drivers publish their merged per-worker stats once per
/// run; the registry accumulates across runs in one process).
void add_solver_stats(const sat::Solver::Stats& stats);

/// Pull the cumulative process-wide sources — cache::ArtifactCache::global()
/// and the ClauseStream stamping counters — into "cache.*" / "cnf.*" gauges,
/// and make sure the whole standard metric catalogue (sat.*, cache.*,
/// cnf.*, exec.*) is registered even when a path never ran, so snapshots
/// have a stable key set.
void refresh_process_metrics();

struct RunReport {
  std::string command;
  /// Config echo: parsed flags and positionals, in name-sorted order.
  std::map<std::string, std::string> config;
  double wall_seconds = 0.0;
  /// Command-specific result summary, pre-serialized as one JSON object
  /// (compact); empty emits "result": {}.
  std::string result_json;

  /// Serialize, pulling phases/spans from the trace aggregator and the
  /// metrics section from the global registry (refresh_process_metrics()
  /// is invoked internally). Same drain contract as obs/trace.hpp.
  void write_json(std::ostream& out, int indent = 2) const;
  /// Returns false when the file cannot be written.
  bool write_json_file(const std::string& path) const;
};

}  // namespace satdiag::obs
