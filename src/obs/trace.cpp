#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "util/json.hpp"

namespace satdiag::obs {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::size_t> g_ring_capacity{1 << 16};
std::atomic<std::uint64_t> g_dropped{0};
// Bumped by reset_tracing(); threads holding a ring from an older generation
// re-acquire, so a reset mid-process does not strand the main thread's
// events in an orphaned ring.
std::atomic<std::uint64_t> g_generation{1};

/// One thread's event ring. Written only by the owning thread; read by the
/// drain functions after that thread has quiesced (joined or known idle).
struct ThreadRing {
  explicit ThreadRing(std::size_t capacity_, std::uint32_t tid_)
      : capacity(capacity_), tid(tid_) {
    // reserve, don't size: pre-zeroing a multi-MB ring up front would put a
    // milliseconds-scale hiccup on the first span of every thread.
    events.reserve(capacity);
  }
  std::size_t capacity;
  std::vector<TraceEvent> events;  // grows to capacity, then wraps
  std::size_t head = 0;            // next overwrite slot once full
  std::uint64_t pushed = 0;        // total pushes (>= events retained)
  std::uint32_t tid = 0;

  void push(const TraceEvent& e) {
    if (events.size() < capacity) {
      events.push_back(e);
    } else {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      events[head] = e;
      head = (head + 1) % events.size();
    }
    ++pushed;
  }

  /// Retained events, oldest first.
  void append_ordered(std::vector<TraceEvent>& out) const {
    const std::size_t n = events.size();
    // Oldest retained event sits at head once the ring has wrapped.
    const std::size_t start = pushed > n ? head : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(events[(start + i) % n]);
    }
  }
};

struct RingDirectory {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 0;
};

RingDirectory& directory() {
  static RingDirectory* dir = new RingDirectory();  // never destroyed
  return *dir;
}

std::shared_ptr<ThreadRing>& thread_ring_slot() {
  thread_local std::shared_ptr<ThreadRing> ring;
  return ring;
}

ThreadRing& thread_ring() {
  thread_local std::uint64_t seen_generation = 0;
  auto& slot = thread_ring_slot();
  const std::uint64_t generation = g_generation.load(std::memory_order_acquire);
  if (!slot || seen_generation != generation) {
    RingDirectory& dir = directory();
    std::lock_guard<std::mutex> lock(dir.mu);
    slot = std::make_shared<ThreadRing>(
        std::max<std::size_t>(1, g_ring_capacity.load()), dir.next_tid++);
    dir.rings.push_back(slot);
    seen_generation = generation;
  }
  return *slot;
}

std::vector<TraceEvent> collect_events_locked() {
  RingDirectory& dir = directory();
  std::lock_guard<std::mutex> lock(dir.mu);
  std::vector<TraceEvent> events;
  for (const auto& ring : dir.rings) ring->append_ordered(events);
  return events;
}

/// (event, tid) pairs for the trace writer.
std::vector<std::pair<TraceEvent, std::uint32_t>> collect_with_tids() {
  RingDirectory& dir = directory();
  std::lock_guard<std::mutex> lock(dir.mu);
  std::vector<std::pair<TraceEvent, std::uint32_t>> events;
  for (const auto& ring : dir.rings) {
    std::vector<TraceEvent> ordered;
    ring->append_ordered(ordered);
    for (const TraceEvent& e : ordered) events.emplace_back(e, ring->tid);
  }
  return events;
}

}  // namespace

std::uint64_t trace_now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

bool tracing_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool enabled) {
  trace_now_ns();  // pin the epoch no later than the first enabled span
  g_enabled.store(enabled, std::memory_order_relaxed);
  // Create the calling thread's ring now so its first span doesn't pay the
  // reserve() inside a timed region (worker threads still pay theirs on
  // first use, amortized across a whole shard).
  if (enabled) thread_ring();
}

void set_ring_capacity(std::size_t events) {
  g_ring_capacity.store(std::max<std::size_t>(1, events));
}

std::size_t ring_capacity() { return g_ring_capacity.load(); }

void reset_tracing() {
  RingDirectory& dir = directory();
  std::lock_guard<std::mutex> lock(dir.mu);
  dir.rings.clear();
  dir.next_tid = 0;
  g_dropped.store(0, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_release);
}

void Span::finish() {
  TraceEvent e;
  e.name = name_;
  e.start_ns = start_ns_;
  e.dur_ns = trace_now_ns() - start_ns_;
  e.arg1_name = arg1_name_;
  e.arg2_name = arg2_name_;
  e.arg1 = arg1_;
  e.arg2 = arg2_;
  thread_ring().push(e);
}

std::size_t num_events() { return collect_events_locked().size(); }

std::uint64_t dropped_events() {
  return g_dropped.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> collect_events() { return collect_events_locked(); }

void write_chrome_trace(std::ostream& out) {
  const auto events = collect_with_tids();
  JsonWriter w(out, /*indent=*/0);
  w.begin_array();
  for (const auto& [e, tid] : events) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("cat", "satdiag");
    w.kv("ph", "X");
    w.kv("pid", 1);
    w.kv("tid", static_cast<std::uint64_t>(tid));
    w.kv("ts", static_cast<double>(e.start_ns) / 1e3);   // microseconds
    w.kv("dur", static_cast<double>(e.dur_ns) / 1e3);
    if (e.arg1_name != nullptr || e.arg2_name != nullptr) {
      w.key("args");
      w.begin_object();
      if (e.arg1_name != nullptr) w.kv(e.arg1_name, e.arg1);
      if (e.arg2_name != nullptr) w.kv(e.arg2_name, e.arg2);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  out << '\n';
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

std::vector<PhaseAgg> aggregate_phases() {
  std::map<std::string, PhaseAgg> by_name;
  for (const TraceEvent& e : collect_events_locked()) {
    PhaseAgg& agg = by_name[e.name];
    agg.name = e.name;
    ++agg.count;
    agg.seconds += static_cast<double>(e.dur_ns) / 1e9;
  }
  std::vector<PhaseAgg> phases;
  phases.reserve(by_name.size());
  for (auto& [name, agg] : by_name) phases.push_back(std::move(agg));
  return phases;
}

}  // namespace satdiag::obs
