#include "seq/unroll.hpp"

#include <cassert>

#include "util/strings.hpp"

namespace satdiag {

UnrolledCircuit unroll(const Netlist& sequential, std::size_t frames) {
  assert(sequential.finalized());
  if (frames == 0) {
    throw NetlistError("unroll: need at least one frame");
  }
  UnrolledCircuit result;
  result.frames = frames;
  result.pis_per_frame = sequential.inputs().size();
  result.pos_per_frame = sequential.outputs().size();
  result.num_state_inputs = sequential.dffs().size();
  Netlist& comb = result.comb;
  comb.set_name(sequential.name() + strprintf("_x%zu", frames));

  // Initial state pseudo-inputs (created first so they lead inputs()).
  std::vector<GateId> state(sequential.dffs().size());
  for (std::size_t i = 0; i < sequential.dffs().size(); ++i) {
    state[i] = comb.add_input(
        strprintf("%s@init", sequential.gate_name(sequential.dffs()[i]).c_str()));
  }

  result.frame_gate.resize(frames);
  for (std::size_t f = 0; f < frames; ++f) {
    auto& map = result.frame_gate[f];
    map.assign(sequential.size(), kNoGate);
    // DFF values for this frame.
    for (std::size_t i = 0; i < sequential.dffs().size(); ++i) {
      const GateId dff = sequential.dffs()[i];
      if (f == 0) {
        map[dff] = state[i];
      } else {
        const GateId prev_data =
            result.frame_gate[f - 1][sequential.fanins(dff)[0]];
        map[dff] = comb.add_gate(
            GateType::kBuf,
            strprintf("%s@%zu", sequential.gate_name(dff).c_str(), f),
            {prev_data});
      }
    }
    // Everything else in topological order; DFF data fanins resolve within
    // the frame, frame boundaries were handled above.
    for (GateId g : sequential.topo_order()) {
      if (sequential.type(g) == GateType::kDff) continue;
      const std::string name =
          strprintf("%s@%zu", sequential.gate_name(g).c_str(), f);
      switch (sequential.type(g)) {
        case GateType::kInput:
          map[g] = comb.add_input(name);
          break;
        case GateType::kConst0:
          map[g] = comb.add_const(false, name);
          break;
        case GateType::kConst1:
          map[g] = comb.add_const(true, name);
          break;
        default: {
          std::vector<GateId> fanins;
          fanins.reserve(sequential.fanins(g).size());
          for (GateId in : sequential.fanins(g)) fanins.push_back(map[in]);
          map[g] = comb.add_gate(sequential.type(g), name, std::move(fanins));
          break;
        }
      }
    }
  }
  for (std::size_t f = 0; f < frames; ++f) {
    for (GateId po : sequential.outputs()) {
      comb.add_output(result.frame_gate[f][po]);
    }
  }
  comb.finalize();
  return result;
}

}  // namespace satdiag
