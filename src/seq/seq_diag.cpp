#include "seq/seq_diag.hpp"

#include <algorithm>
#include <cassert>

#include "cnf/tseitin.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace satdiag {

std::vector<std::vector<bool>> simulate_sequence(
    const Netlist& sequential, const std::vector<std::vector<bool>>& inputs,
    const std::vector<bool>& initial_state) {
  assert(initial_state.size() == sequential.dffs().size());
  ParallelSimulator sim(sequential);
  for (std::size_t i = 0; i < sequential.dffs().size(); ++i) {
    sim.set_source(sequential.dffs()[i], initial_state[i] ? ~0ULL : 0ULL);
  }
  std::vector<std::vector<bool>> observed;
  observed.reserve(inputs.size());
  for (const auto& vector : inputs) {
    sim.set_input_vector(0, vector);
    sim.run();
    std::vector<bool> outs;
    outs.reserve(sequential.outputs().size());
    for (GateId po : sequential.outputs()) {
      outs.push_back(sim.value_bit(po, 0));
    }
    observed.push_back(std::move(outs));
    sim.step_state();
  }
  return observed;
}

SeqTestSet generate_failing_seq_tests(const Netlist& golden,
                                      const Netlist& faulty,
                                      std::size_t count,
                                      std::size_t sequence_length, Rng& rng) {
  assert(golden.size() == faulty.size());
  SeqTestSet tests;
  const std::vector<bool> reset(golden.dffs().size(), false);
  for (std::size_t attempt = 0; attempt < count * 64 && tests.size() < count;
       ++attempt) {
    std::vector<std::vector<bool>> sequence(sequence_length);
    for (auto& vector : sequence) {
      vector.resize(golden.inputs().size());
      for (std::size_t i = 0; i < vector.size(); ++i) {
        vector[i] = rng.next_bool();
      }
    }
    const auto good = simulate_sequence(golden, sequence, reset);
    const auto bad = simulate_sequence(faulty, sequence, reset);
    bool used = false;
    for (std::size_t cycle = 0; cycle < sequence_length && !used; ++cycle) {
      for (std::size_t po = 0; po < good[cycle].size() && !used; ++po) {
        if (good[cycle][po] != bad[cycle][po]) {
          SeqTest test;
          test.input_sequence = sequence;
          test.initial_state = reset;
          test.cycle = cycle;
          test.output_index = po;
          test.correct_value = good[cycle][po];
          tests.push_back(std::move(test));
          used = true;  // one observation per sequence for diversity
        }
      }
    }
  }
  return tests;
}

SeqDiagnoseResult seq_sat_diagnose(const Netlist& sequential,
                                   const SeqTestSet& tests,
                                   const SeqDiagnoseOptions& options) {
  assert(!tests.empty());
  SeqDiagnoseResult result;
  Timer build_timer;
  sat::Solver solver;

  // One shared select line per combinational gate of the original netlist.
  std::vector<GateId> instrumented;
  std::vector<sat::Var> select_var;
  std::vector<std::uint32_t> select_index(sequential.size(), 0xffffffffu);
  for (GateId g = 0; g < sequential.size(); ++g) {
    if (!sequential.is_combinational(g)) continue;
    select_index[g] = static_cast<std::uint32_t>(instrumented.size());
    instrumented.push_back(g);
    select_var.push_back(solver.new_var(/*decidable=*/true));
  }

  std::vector<sat::Lit> ins;
  for (const SeqTest& test : tests) {
    const std::size_t frames = test.input_sequence.size();
    assert(test.cycle < frames);
    const UnrolledCircuit unrolled = unroll(sequential, frames);
    const Netlist& comb = unrolled.comb;

    // Variables for every unrolled gate (post-mux values).
    std::vector<sat::Var> var(comb.size());
    for (GateId g : comb.topo_order()) {
      var[g] = solver.new_var(/*decidable=*/false);
    }
    // Which original gate does an unrolled gate correspond to?
    std::vector<GateId> origin(comb.size(), kNoGate);
    for (std::size_t f = 0; f < frames; ++f) {
      for (GateId g = 0; g < sequential.size(); ++g) {
        // DFF holders in frames > 0 are buffers that must NOT be
        // instrumented (the DFF itself is not correctable); map only
        // combinational gates.
        if (sequential.is_combinational(g)) {
          origin[unrolled.frame_gate[f][g]] = g;
        }
      }
    }

    for (GateId g : comb.topo_order()) {
      const sat::Lit out = sat::pos(var[g]);
      const GateId orig = origin[g];
      sat::Lit function_out = out;
      if (orig != kNoGate) {
        const sat::Lit s = sat::pos(select_var[select_index[orig]]);
        const sat::Var c = solver.new_var(/*decidable=*/true);
        solver.add_clause(~s, ~out, sat::pos(c));
        solver.add_clause(~s, out, sat::neg(c));
        if (options.gating_clauses) solver.add_clause(s, sat::neg(c));
        const sat::Var orig_out = solver.new_var(/*decidable=*/false);
        solver.add_clause(s, ~out, sat::pos(orig_out));
        solver.add_clause(s, out, sat::neg(orig_out));
        function_out = sat::pos(orig_out);
      }
      switch (comb.type(g)) {
        case GateType::kInput:
        case GateType::kDff:
          break;
        case GateType::kConst0:
          solver.add_clause(~function_out);
          break;
        case GateType::kConst1:
          solver.add_clause(function_out);
          break;
        default: {
          ins.clear();
          for (GateId f : comb.fanins(g)) ins.push_back(sat::pos(var[f]));
          encode_gate_function(solver, comb.type(g), function_out, ins);
          break;
        }
      }
    }

    // Constrain initial state and the input sequence.
    assert(test.initial_state.size() == sequential.dffs().size());
    for (std::size_t i = 0; i < sequential.dffs().size(); ++i) {
      const GateId holder = unrolled.frame_gate[0][sequential.dffs()[i]];
      solver.add_clause(
          sat::Lit(var[holder], /*negated=*/!test.initial_state[i]));
    }
    for (std::size_t f = 0; f < frames; ++f) {
      assert(test.input_sequence[f].size() == sequential.inputs().size());
      for (std::size_t i = 0; i < sequential.inputs().size(); ++i) {
        const GateId pi = unrolled.frame_gate[f][sequential.inputs()[i]];
        solver.add_clause(
            sat::Lit(var[pi], /*negated=*/!test.input_sequence[f][i]));
      }
    }
    // The erroneous observation must take its correct value.
    const GateId obs = unrolled.output_at(test.cycle, test.output_index);
    solver.add_clause(sat::Lit(var[obs], /*negated=*/!test.correct_value));
  }

  std::vector<sat::Lit> select_lits;
  for (sat::Var s : select_var) select_lits.push_back(sat::pos(s));
  const CardinalityTracker tracker = encode_cardinality_tracker(
      solver, select_lits, options.k, options.card_encoding);
  result.build_seconds = build_timer.seconds();
  result.num_vars = static_cast<std::size_t>(solver.num_vars());
  result.num_clauses = solver.num_clauses();

  Timer solve_timer;
  for (unsigned bound = 1; bound <= options.k; ++bound) {
    const auto assumptions = tracker.assume_at_most(bound);
    for (;;) {
      if (options.deadline.expired() ||
          (options.max_solutions >= 0 &&
           static_cast<std::int64_t>(result.solutions.size()) >=
               options.max_solutions)) {
        result.complete = false;
        result.all_seconds = solve_timer.seconds();
        return result;
      }
      solver.set_deadline(options.deadline);
      const sat::LBool status = solver.solve(assumptions);
      if (status == sat::LBool::kUndef) {
        result.complete = false;
        break;
      }
      if (status == sat::LBool::kFalse) break;
      std::vector<GateId> correction;
      sat::Clause blocking;
      for (std::size_t i = 0; i < instrumented.size(); ++i) {
        if (solver.model_value(select_var[i]) == sat::LBool::kTrue) {
          correction.push_back(instrumented[i]);
          blocking.push_back(sat::neg(select_var[i]));
        }
      }
      if (correction.empty()) {
        // The model selected zero corrections: the test constraints are
        // satisfiable by the UNMODIFIED circuit, i.e. the test-set never
        // actually fails and the diagnosis problem is degenerate. The old
        // code pushed an empty "correction" and returned with complete ==
        // true — callers saw a bogus complete enumeration containing the
        // empty set. Report the case distinctly instead; any non-empty
        // selection found earlier is subsumed by the empty one and carries
        // no diagnostic meaning either, so the solution list is cleared.
        result.tests_consistent = true;
        result.solutions.clear();
        result.all_seconds = solve_timer.seconds();
        return result;
      }
      std::sort(correction.begin(), correction.end());
      result.solutions.push_back(std::move(correction));
      if (!solver.add_clause(std::move(blocking))) {
        result.all_seconds = solve_timer.seconds();
        return result;
      }
    }
    if (!result.complete) break;
  }
  result.all_seconds = solve_timer.seconds();
  return result;
}

}  // namespace satdiag
