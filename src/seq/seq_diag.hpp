// Sequential diagnosis without the full-scan assumption (the paper's
// reference [4]: Ali/Veneris/Safarpour/Drechsler/Smith/Abadir, ICCAD'04).
//
// A sequential test is an input sequence plus one erroneous primary output
// at one cycle. Diagnosis unrolls the circuit over the sequence length; the
// correction multiplexer of gate g shares ONE select line across all time
// frames and all tests (the physical gate is wrong in every cycle), while
// the injected correction value is free per (test, frame).
//
// The same enumeration discipline as BSAT (bound 1..k, subset blocking)
// yields all essential valid sequential corrections.
#pragma once

#include "cnf/cardinality.hpp"
#include "netlist/netlist.hpp"
#include "sat/solver.hpp"
#include "seq/unroll.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace satdiag {

struct SeqTest {
  /// input_sequence[cycle][i] drives sequential inputs()[i] at that cycle.
  std::vector<std::vector<bool>> input_sequence;
  /// Initial state values over sequential dffs() (reset state).
  std::vector<bool> initial_state;
  /// The erroneous observation: primary output `output_index` at `cycle`.
  std::size_t cycle = 0;
  std::size_t output_index = 0;
  bool correct_value = false;
};

using SeqTestSet = std::vector<SeqTest>;

struct SeqDiagnoseOptions {
  unsigned k = 1;
  CardEncoding card_encoding = CardEncoding::kSequential;
  bool gating_clauses = true;
  std::int64_t max_solutions = -1;
  Deadline deadline;
};

struct SeqDiagnoseResult {
  /// Essential valid corrections (original-netlist gate ids).
  std::vector<std::vector<GateId>> solutions;
  bool complete = true;
  /// True when the solver found a model selecting ZERO corrections: the
  /// test-set is consistent with the unmodified circuit (no observation
  /// actually fails), so diagnosis is degenerate. `solutions` is empty in
  /// that case — the empty set is NOT fabricated as a correction.
  bool tests_consistent = false;
  double build_seconds = 0.0;
  double all_seconds = 0.0;
  std::size_t num_vars = 0;
  std::size_t num_clauses = 0;
};

/// SAT-based sequential diagnosis on the sequential netlist directly.
SeqDiagnoseResult seq_sat_diagnose(const Netlist& sequential,
                                   const SeqTestSet& tests,
                                   const SeqDiagnoseOptions& options);

/// Simulate the sequential netlist over a test's input sequence and return
/// the value of every unrolled observation: outputs[cycle][po_index].
/// Gate-change errors can be pre-applied by passing a faulty netlist.
std::vector<std::vector<bool>> simulate_sequence(
    const Netlist& sequential, const std::vector<std::vector<bool>>& inputs,
    const std::vector<bool>& initial_state);

/// Generate failing sequential tests for an error list by golden-vs-faulty
/// sequence simulation with random input sequences.
SeqTestSet generate_failing_seq_tests(const Netlist& golden,
                                      const Netlist& faulty,
                                      std::size_t count,
                                      std::size_t sequence_length, Rng& rng);

}  // namespace satdiag
