// Time-frame expansion (iterative logic array).
//
// The paper treats sequential ISCAS89 circuits through the full-scan view;
// its SAT-based reference [4] (Ali et al., ICCAD'04) instead unrolls the
// sequential circuit over the test sequence's clock cycles. This module
// provides that substrate: frame 0 exposes the initial state as pseudo
// inputs, frame f>0 replaces each DFF output by a buffer of the previous
// frame's data signal, and every frame's primary outputs are observable.
#pragma once

#include "netlist/netlist.hpp"

namespace satdiag {

struct UnrolledCircuit {
  Netlist comb;  // purely combinational unrolled netlist
  std::size_t frames = 0;

  /// frame_gate[f][g] = unrolled gate id of original gate g in frame f.
  /// DFF gates map to their frame-f value holder (pseudo-PI in frame 0,
  /// buffer of the previous frame's data signal afterwards).
  std::vector<std::vector<GateId>> frame_gate;

  /// comb.inputs() layout: state_inputs (original DFF order), then
  /// frame-0 PIs, frame-1 PIs, ... (original PI order within a frame).
  std::size_t num_state_inputs = 0;
  std::size_t pis_per_frame = 0;

  /// comb.outputs() layout: frame-major, original PO order within a frame.
  std::size_t pos_per_frame = 0;

  GateId gate_at(std::size_t frame, GateId original) const {
    return frame_gate[frame][original];
  }
  GateId output_at(std::size_t frame, std::size_t po_index) const {
    return comb.outputs()[frame * pos_per_frame + po_index];
  }
};

/// Unroll `sequential` for `frames` >= 1 clock cycles.
UnrolledCircuit unroll(const Netlist& sequential, std::size_t frames);

}  // namespace satdiag
