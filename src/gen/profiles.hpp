// Named generator profiles matched to the ISCAS89 circuits the paper uses.
//
// Gate/DFF/PI/PO counts follow the published benchmark statistics; the "_like"
// suffix marks them as synthetic stand-ins (see DESIGN.md substitutions).
// `scale` shrinks gate and DFF counts proportionally for quick runs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gen/generator.hpp"

namespace satdiag {

struct CircuitProfile {
  std::string name;  // e.g. "s1423_like"
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t dffs = 0;
  std::size_t gates = 0;
};

/// All built-in profiles, smallest first. Includes the three circuits of
/// Tables 2/3 (s1423, s6669, s38417) and a spread of further ISCAS89 sizes
/// for the Figure 6 scatter.
const std::vector<CircuitProfile>& circuit_profiles();

std::optional<CircuitProfile> find_profile(const std::string& name);

/// Instantiate a profile. `scale` in (0,1] shrinks gates/DFFs; the seed keeps
/// distinct profiles distinct.
Netlist make_profile_circuit(const CircuitProfile& profile, double scale = 1.0,
                             std::uint64_t seed = 1);

}  // namespace satdiag
