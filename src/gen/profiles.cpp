#include "gen/profiles.hpp"

#include <algorithm>
#include <cmath>

namespace satdiag {

const std::vector<CircuitProfile>& circuit_profiles() {
  // name, PI, PO, DFF, combinational gates — published ISCAS89 statistics.
  static const std::vector<CircuitProfile> kProfiles = {
      {"s298_like", 3, 6, 14, 119},       {"s344_like", 9, 11, 15, 160},
      {"s382_like", 3, 6, 21, 158},       {"s420_like", 18, 1, 16, 218},
      {"s510_like", 19, 7, 6, 211},       {"s526_like", 3, 6, 21, 193},
      {"s641_like", 35, 24, 19, 379},     {"s713_like", 35, 23, 19, 393},
      {"s820_like", 18, 19, 5, 289},      {"s953_like", 16, 23, 29, 395},
      {"s1196_like", 14, 14, 18, 529},    {"s1423_like", 17, 5, 74, 657},
      {"s1488_like", 8, 19, 6, 653},      {"s5378_like", 35, 49, 179, 2779},
      {"s6669_like", 83, 55, 239, 3080},  {"s9234_like", 36, 39, 211, 5597},
      {"s13207_like", 62, 152, 638, 7951},
      {"s15850_like", 77, 150, 534, 9772},
      {"s38417_like", 28, 106, 1636, 22179},
      {"s38584_like", 38, 304, 1426, 19253},
  };
  return kProfiles;
}

std::optional<CircuitProfile> find_profile(const std::string& name) {
  for (const CircuitProfile& p : circuit_profiles()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

Netlist make_profile_circuit(const CircuitProfile& profile, double scale,
                             std::uint64_t seed) {
  GeneratorParams params;
  params.name = profile.name;
  params.num_inputs = profile.inputs;
  params.num_outputs = profile.outputs;
  const double s = std::clamp(scale, 1e-3, 1.0);
  params.num_dffs = static_cast<std::size_t>(std::llround(
      static_cast<double>(profile.dffs) * s));
  params.num_gates = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::llround(
             static_cast<double>(profile.gates) * s)));
  // Mix the profile identity into the stream so s1423_like and s1488_like
  // differ even with the same user seed.
  std::uint64_t h = seed;
  for (char c : profile.name) h = h * 1099511628211ULL + static_cast<unsigned char>(c);
  params.seed = h;
  return generate_circuit(params);
}

}  // namespace satdiag
