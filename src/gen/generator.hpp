// Seeded synthetic sequential circuit generator.
//
// Produces ISCAS89-like netlists: mostly 2-3 input AND/NAND/OR/NOR gates with
// a sprinkle of inverters and XORs, moderate reconvergent fanout created by a
// locality-biased fanin picker, DFF feedback loops, and every gate reachable
// from the inputs and observable at some output (dangling gates are promoted
// to primary outputs or DFF data inputs).
//
// This is the substitution for the original ISCAS89 netlists (see DESIGN.md):
// the paper's claims depend on circuit scale and DAG structure, not on the
// exact benchmark functions, and generated circuits are reproducible from
// the seed.
#pragma once

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace satdiag {

struct GeneratorParams {
  std::string name = "synthetic";
  std::size_t num_inputs = 8;
  std::size_t num_outputs = 4;
  std::size_t num_dffs = 0;
  std::size_t num_gates = 100;  // combinational gates, DFFs not included
  std::size_t max_arity = 4;
  /// Probability that a fanin is drawn from the recent-gate window rather
  /// than uniformly from all existing signals; higher values make deeper,
  /// more chain-like circuits (ISCAS89 circuits are fairly deep).
  double locality = 0.8;
  std::size_t window = 48;
  /// Fraction of XOR/XNOR among multi-input gates.
  double xor_fraction = 0.06;
  std::uint64_t seed = 1;
};

/// Generate and finalize a netlist; deterministic in `params`.
Netlist generate_circuit(const GeneratorParams& params);

}  // namespace satdiag
