#include "gen/generator.hpp"

#include <algorithm>
#include <cassert>

#include "util/strings.hpp"

namespace satdiag {
namespace {

GateType pick_type(Rng& rng, std::size_t arity, double xor_fraction) {
  if (arity == 1) {
    return rng.next_bool(0.7) ? GateType::kNot : GateType::kBuf;
  }
  if (rng.next_bool(xor_fraction)) {
    return rng.next_bool() ? GateType::kXor : GateType::kXnor;
  }
  switch (rng.next_below(4)) {
    case 0:
      return GateType::kAnd;
    case 1:
      return GateType::kNand;
    case 2:
      return GateType::kOr;
    default:
      return GateType::kNor;
  }
}

std::size_t pick_arity(Rng& rng, std::size_t max_arity) {
  // Roughly the ISCAS89 fan-in mix: mostly 2, some 3, few 1 and 4+.
  const double r = rng.next_double();
  std::size_t arity;
  if (r < 0.08) {
    arity = 1;
  } else if (r < 0.70) {
    arity = 2;
  } else if (r < 0.92) {
    arity = 3;
  } else {
    arity = 4;
  }
  return std::min(arity, std::max<std::size_t>(1, max_arity));
}

}  // namespace

Netlist generate_circuit(const GeneratorParams& params) {
  if (params.num_inputs == 0) {
    throw NetlistError("generator: need at least one input");
  }
  if (params.num_outputs == 0) {
    throw NetlistError("generator: need at least one output");
  }
  Rng rng(params.seed);
  Netlist nl(params.name);

  std::vector<GateId> signals;  // every signal usable as a fanin
  for (std::size_t i = 0; i < params.num_inputs; ++i) {
    signals.push_back(nl.add_input(strprintf("pi%zu", i)));
  }
  std::vector<GateId> dffs;
  for (std::size_t i = 0; i < params.num_dffs; ++i) {
    const GateId d = nl.add_dff(strprintf("ff%zu", i));
    dffs.push_back(d);
    signals.push_back(d);
  }

  std::vector<std::uint32_t> fanout_count(signals.size() + params.num_gates, 0);

  auto pick_fanin = [&](std::vector<GateId>& chosen) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      GateId cand;
      if (rng.next_bool(params.locality) && !signals.empty()) {
        // Recent window: biases toward deep chains and local reconvergence.
        const std::size_t window = std::min(params.window, signals.size());
        cand = signals[signals.size() - 1 - rng.next_below(window)];
      } else {
        cand = rng.pick(signals);
      }
      if (std::find(chosen.begin(), chosen.end(), cand) == chosen.end()) {
        return cand;
      }
    }
    return rng.pick(signals);  // tiny circuits: allow a duplicate fanin
  };

  std::vector<GateId> comb_gates;
  comb_gates.reserve(params.num_gates);
  for (std::size_t i = 0; i < params.num_gates; ++i) {
    const std::size_t arity = pick_arity(rng, params.max_arity);
    std::vector<GateId> fanins;
    fanins.reserve(arity);
    for (std::size_t j = 0; j < arity; ++j) {
      fanins.push_back(pick_fanin(fanins));
    }
    const GateType type = pick_type(rng, fanins.size(), params.xor_fraction);
    const GateId g = nl.add_gate(type, strprintf("g%zu", i), fanins);
    for (GateId f : fanins) ++fanout_count[f];
    comb_gates.push_back(g);
    signals.push_back(g);
  }

  // DFF data inputs: prefer currently dangling gates so everything feeds
  // state or an output; fall back to random combinational gates.
  std::vector<GateId> dangling;
  for (GateId g : comb_gates) {
    if (fanout_count[g] == 0) dangling.push_back(g);
  }
  rng.shuffle(dangling);
  for (GateId d : dffs) {
    GateId data;
    if (!dangling.empty()) {
      data = dangling.back();
      dangling.pop_back();
    } else if (!comb_gates.empty()) {
      data = rng.pick(comb_gates);
    } else {
      data = rng.pick(signals);
    }
    nl.set_dff_input(d, data);
    ++fanout_count[data];
  }

  // Primary outputs: consume the remaining dangling gates first.
  std::vector<GateId> outputs;
  while (outputs.size() < params.num_outputs && !dangling.empty()) {
    outputs.push_back(dangling.back());
    dangling.pop_back();
  }
  while (outputs.size() < params.num_outputs) {
    const GateId g =
        comb_gates.empty() ? rng.pick(signals) : rng.pick(comb_gates);
    if (std::find(outputs.begin(), outputs.end(), g) == outputs.end()) {
      outputs.push_back(g);
    } else if (comb_gates.size() <= params.num_outputs) {
      outputs.push_back(g);  // tiny circuit: duplicates unavoidable
    }
  }
  // Any gates still dangling (more dangling than outputs+dffs) are attached
  // as extra primary outputs so the whole circuit is observable.
  for (GateId g : dangling) outputs.push_back(g);
  for (GateId g : outputs) nl.add_output(g);

  nl.finalize();
  return nl;
}

}  // namespace satdiag
