#include "repair/realize.hpp"

#include <algorithm>
#include <cassert>

#include "cnf/mux_instrument.hpp"
#include "sim/simulator.hpp"

namespace satdiag {
namespace {

// Truth table of a standard gate type at the given arity.
std::vector<bool> type_truth_table(GateType type, std::size_t arity) {
  std::vector<bool> table(std::size_t{1} << arity);
  std::vector<bool> ins(arity);
  for (std::size_t pattern = 0; pattern < table.size(); ++pattern) {
    for (std::size_t i = 0; i < arity; ++i) {
      ins[i] = (pattern >> i) & 1;
    }
    table[pattern] = eval_gate(type, ins);
  }
  return table;
}

}  // namespace

bool eval_truth_table(const std::vector<bool>& table,
                      const std::vector<bool>& fanin_values) {
  std::size_t pattern = 0;
  for (std::size_t i = 0; i < fanin_values.size(); ++i) {
    if (fanin_values[i]) pattern |= std::size_t{1} << i;
  }
  assert(pattern < table.size());
  return table[pattern];
}

RepairResult realize_correction(const Netlist& nl, const TestSet& tests,
                                const std::vector<GateId>& correction) {
  RepairResult result;
  if (correction.empty() || tests.empty()) return result;
  for (GateId g : correction) {
    if (!nl.is_combinational(g) || nl.fanins(g).size() > 16) return result;
  }

  // Solve the diagnosis instance with exactly this correction enabled.
  DiagnosisInstanceOptions options;
  options.instrumented = correction;
  options.max_k = 0;  // bound imposed via assumptions
  options.gating_clauses = false;  // c values must stay free
  options.internal_decisions = false;
  DiagnosisInstance inst = build_diagnosis_instance(nl, tests, options);
  std::vector<sat::Lit> assumptions;
  for (sat::Var s : inst.select_var) assumptions.push_back(sat::pos(s));
  if (inst.solver.solve(assumptions) != sat::LBool::kTrue) {
    return result;  // not a valid correction
  }

  // Initialize repairs with the original functions as don't-care filling.
  result.repairs.reserve(correction.size());
  for (GateId g : correction) {
    GateRepair repair;
    repair.gate = g;
    repair.truth_table = type_truth_table(nl.type(g), nl.fanins(g).size());
    repair.constrained.assign(repair.truth_table.size(), false);
    result.repairs.push_back(std::move(repair));
  }

  // Per test: read the model's fan-in values and the demanded output value
  // (the post-mux variable of the corrected gate).
  result.consistent = true;
  for (std::size_t t = 0; t < tests.size(); ++t) {
    const CircuitEncoding& enc = inst.copies[t];
    for (std::size_t ci = 0; ci < correction.size(); ++ci) {
      GateRepair& repair = result.repairs[ci];
      const GateId g = correction[ci];
      std::size_t pattern = 0;
      const auto fanins = nl.fanins(g);
      for (std::size_t i = 0; i < fanins.size(); ++i) {
        if (inst.solver.model_value(enc.gate_var[fanins[i]]) ==
            sat::LBool::kTrue) {
          pattern |= std::size_t{1} << i;
        }
      }
      const bool demanded =
          inst.solver.model_value(enc.gate_var[g]) == sat::LBool::kTrue;
      if (repair.constrained[pattern] &&
          repair.truth_table[pattern] != demanded) {
        result.consistent = false;
      } else {
        repair.constrained[pattern] = true;
        repair.truth_table[pattern] = demanded;
      }
    }
  }
  if (!result.consistent) return result;

  // Match against standard gate types.
  for (GateRepair& repair : result.repairs) {
    const std::size_t arity = nl.fanins(repair.gate).size();
    for (GateType type : substitutable_types(arity)) {
      if (type_truth_table(type, arity) == repair.truth_table) {
        repair.matching_type = type;
        break;
      }
    }
  }

  // Verify by resimulation: override each repaired gate's value per test
  // according to the fitted table, check the erroneous outputs.
  result.verified = true;
  ParallelSimulator sim(nl);
  for (const Test& test : tests) {
    sim.clear_overrides();
    sim.set_input_vector(0, test.input_values);
    // The fitted functions may be interdependent (one repaired gate feeding
    // another), so evaluate in topological order with value overrides.
    sim.run();  // baseline values for fan-ins of the first repair
    // Iterate to a fixed point: depth of interdependence is bounded by the
    // correction size.
    for (std::size_t round = 0; round < correction.size(); ++round) {
      for (const GateRepair& repair : result.repairs) {
        const auto fanins = nl.fanins(repair.gate);
        std::vector<bool> values;
        values.reserve(fanins.size());
        for (GateId f : fanins) values.push_back(sim.value_bit(f, 0));
        const bool out = eval_truth_table(repair.truth_table, values);
        sim.set_value_override(repair.gate, out ? ~0ULL : 0ULL);
      }
      sim.run();
    }
    const GateId obs = test_output_gate(nl, test);
    if (sim.value_bit(obs, 0) != test.correct_value) {
      result.verified = false;
      break;
    }
  }
  return result;
}

}  // namespace satdiag
