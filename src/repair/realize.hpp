// Correction realization — from diagnosis to repair.
//
// Section 4 of the paper: "with respect to each test a new value for each
// gate in the correction is provided. This can be exploited to determine the
// 'correct' function of the gate." This module does exactly that: it solves
// the diagnosis instance restricted to a chosen correction, reads off the
// demanded value of every corrected gate per test together with the gate's
// local fan-in values, fits a replacement function over the fan-ins
// (partial truth table, original function as the don't-care filling), and
// verifies by resimulation that the repaired netlist passes every test.
//
// When the designer's error was a gate substitution, the fitted function
// frequently *is* a standard gate type — recovering the golden gate.
#pragma once

#include <optional>

#include "netlist/testset.hpp"

namespace satdiag {

struct GateRepair {
  GateId gate = kNoGate;
  /// Fitted truth table over the gate's fan-ins (LSB-first by fan-in
  /// pattern); entries not demanded by any test keep the original function.
  std::vector<bool> truth_table;
  /// Fan-in patterns actually constrained by tests.
  std::vector<bool> constrained;
  /// A standard gate type matching the fitted table, if any.
  std::optional<GateType> matching_type;
};

struct RepairResult {
  std::vector<GateRepair> repairs;  // one per correction gate
  /// False when two tests demanded conflicting values for the same fan-in
  /// pattern: the correction is valid in the per-test model but has no
  /// realization as a function of the local fan-ins only.
  bool consistent = false;
  /// True when the repaired netlist produces the correct value on the
  /// erroneous output of every test (checked by simulation).
  bool verified = false;
};

/// Fit and verify a repair for `correction` on implementation `nl` against
/// `tests`. The correction should be a valid correction (e.g. a BSAT
/// solution); for invalid corrections the result is not consistent/verified.
RepairResult realize_correction(const Netlist& nl, const TestSet& tests,
                                const std::vector<GateId>& correction);

/// Evaluate a fitted truth table on concrete fan-in values.
bool eval_truth_table(const std::vector<bool>& table,
                      const std::vector<bool>& fanin_values);

}  // namespace satdiag
